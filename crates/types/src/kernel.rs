//! Column-at-a-time predicate kernels over a typed partial gather.
//!
//! The scalar entry point, [`Predicate::eval`], resolves both operands and
//! dispatches on [`crate::Value`]'s type tag for every tuple. When a
//! selection of the common shape `col <op> constant` is applied to a whole
//! [`TupleBatch`], that per-tuple dispatch dominates: the operator, the
//! constant, and the column are loop-invariant. [`Predicate::eval_batch`]
//! recognizes those shapes, gathers the column once into a **typed lane**,
//! and runs one tight comparison loop over primitive values — the standard
//! column-at-a-time lever that makes adaptive operators cheap enough to
//! re-route freely.
//!
//! # The typed partial gather
//!
//! [`PartialGather::classify`] walks the batch **once** and splits it into
//!
//! * a typed *lane* — the column values that match the kernel's type
//!   (including sound numeric coercions, e.g. `Int` rows widening into a
//!   `Float` kernel's lane exactly as [`crate::Value::sql_cmp`] would), in
//!   batch order, plus the batch index of each lane entry; and
//! * an *exception list* — the batch indices whose value broke the lane's
//!   type invariant (`Null`, EOT markers, cross-type rows with coercion
//!   semantics the lane cannot reproduce, or tuples that do not span the
//!   kernel's table at all).
//!
//! The kernel then runs over the lane, and **only** the exception rows are
//! evaluated by the scalar [`Predicate::eval`], which remains the semantic
//! ground truth for SQL three-valued logic and numeric coercion. No batch
//! is ever scanned twice: the PR-2 kernels aborted the gather on the first
//! non-conforming value and re-ran the scalar loop over the *whole* batch,
//! so one `NULL` in a 256-row wave paid a double scan. Now it pays one
//! classification pass plus one scalar call.
//!
//! # Dispatch rules
//!
//! 1. [`Predicate::const_kernel`] recognizes `col <op> const` with an
//!    `Int`, `Float`, `Str` or `Bool` constant, in either orientation (the
//!    operator is flipped so the column is always on the left), plus the
//!    membership shapes `col IN (all-Int list)` and `col IN (all-Str
//!    list)` (dedup-sorted for binary search). `col IN (single scalar)`
//!    normalizes to the equality kernel.
//! 2. Everything else evaluates via the scalar loop: join predicates,
//!    `Const op Const`, `NULL`/EOT constants (uniformly false — not worth
//!    a kernel), and *mixed-type* IN-lists, whose per-member coercion
//!    (`3 IN (3.0, 'x')` is true) a single typed lane cannot express.
//! 3. Per batch member, the gather admits exactly the values whose kernel
//!    verdict is bit-equal to the scalar verdict: `Int` rows enter `Int`
//!    and (widened) `Float` lanes; `Float` rows enter only `Float` lanes
//!    (an `Int`-constant comparison against a `Float` row coerces the
//!    *constant*, so it stays scalar); `Str`/`Bool` rows enter lanes of
//!    their own type. `NaN` needs no exception: the lane's native `f64`
//!    comparisons reproduce SQL's "NaN compares false, so `<>` is true"
//!    behaviour exactly.
//! 4. Either way the result is verdict-for-verdict identical to mapping
//!    [`Predicate::eval`] over the batch — `tests/prop_kernel_equivalence.rs`
//!    locks this down over randomized and adversarial mixed batches.
//!
//! Selection Modules additionally fuse several same-table selections into
//! one pass over a batch (`stems-core`'s `Sm::apply_batch_fused`); the
//! masked entry point [`Predicate::eval_batch_masked`] is what lets later
//! predicates in the fused chain gather only the still-alive rows.

use crate::{CmpOp, ColRef, Operand, Predicate, TupleBatch, Value};
use std::sync::Arc;

/// One typed gather of a column over a batch: the classification pass
/// behind every kernel. `lane[k]` is the typed value of batch row
/// `lane_rows[k]`; `exceptions` are the rows the kernel hands back to the
/// scalar path. Every non-masked row lands in exactly one of the two.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialGather<T> {
    pub lane: Vec<T>,
    pub lane_rows: Vec<u32>,
    pub exceptions: Vec<u32>,
}

impl<T> PartialGather<T> {
    /// Classify each (non-masked) batch member once: rows whose value at
    /// `col` is admitted by `extract` join the typed lane, the rest become
    /// exceptions. Rows where `mask` is `false` are skipped entirely.
    pub fn classify<'a>(
        batch: &'a TupleBatch,
        col: ColRef,
        mask: Option<&[bool]>,
        extract: impl Fn(&'a Value) -> Option<T>,
    ) -> PartialGather<T> {
        debug_assert!(batch.len() <= u32::MAX as usize);
        let mut g = PartialGather {
            lane: Vec::with_capacity(batch.len()),
            lane_rows: Vec::with_capacity(batch.len()),
            exceptions: Vec::new(),
        };
        for (i, t) in batch.iter().enumerate() {
            if mask.is_some_and(|m| !m[i]) {
                continue;
            }
            match t.value(col.table, col.col).and_then(&extract) {
                Some(v) => {
                    g.lane.push(v);
                    g.lane_rows.push(i as u32);
                }
                None => g.exceptions.push(i as u32),
            }
        }
        g
    }
}

/// A selection predicate specialized to a columnar kernel: one typed
/// constant (or constant list) compared against one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstKernel {
    /// `Int(col) <op> Int-constant`.
    Int { col: ColRef, op: CmpOp, rhs: i64 },
    /// `Float(col) <op> Float-constant`; `Int` rows widen into the lane.
    Float { col: ColRef, op: CmpOp, rhs: f64 },
    /// `Str(col) <op> Str-constant`.
    Str {
        col: ColRef,
        op: CmpOp,
        rhs: Arc<str>,
    },
    /// `Bool(col) <op> Bool-constant`.
    Bool { col: ColRef, op: CmpOp, rhs: bool },
    /// `Int(col) IN (all-Int list)`, dedup-sorted for binary search.
    InInt { col: ColRef, sorted: Vec<i64> },
    /// `Str(col) IN (all-Str list)`, dedup-sorted for binary search.
    InStr { col: ColRef, sorted: Vec<Arc<str>> },
}

impl Predicate {
    /// Recognize a vectorizable constant-selection shape (see the module
    /// docs for the dispatch rules). `None` for every other predicate.
    pub fn const_kernel(&self) -> Option<ConstKernel> {
        // UDF predicates carry placeholder comparison fields that must not
        // be mistaken for a `col = const` shape; their verdicts go through
        // the scalar path (and the memo/dedup pipeline in stems-core).
        if !matches!(self.kind, crate::ExprKind::Cmp) {
            return None;
        }
        // Membership against a constant list.
        if self.op == CmpOp::In {
            if let (Operand::Col(c), Operand::List(items)) = (&self.left, &self.right) {
                if items.is_empty() {
                    return None; // scalar loop: uniformly false
                }
                if items.iter().all(|v| matches!(v, Value::Int(_))) {
                    let mut sorted: Vec<i64> = items
                        .iter()
                        .map(|v| match v {
                            Value::Int(i) => *i,
                            _ => unreachable!("all-Int checked above"),
                        })
                        .collect();
                    sorted.sort_unstable();
                    sorted.dedup();
                    return Some(ConstKernel::InInt { col: *c, sorted });
                }
                if items.iter().all(|v| matches!(v, Value::Str(_))) {
                    let mut sorted: Vec<Arc<str>> = items
                        .iter()
                        .map(|v| match v {
                            Value::Str(s) => s.clone(),
                            _ => unreachable!("all-Str checked above"),
                        })
                        .collect();
                    sorted.sort();
                    sorted.dedup();
                    return Some(ConstKernel::InStr { col: *c, sorted });
                }
                // Mixed-type lists keep per-member scalar coercion.
                return None;
            }
        }
        // `col <op> const`, either orientation.
        let (col, op, k) = match (&self.left, &self.right) {
            (Operand::Col(c), Operand::Const(k)) => (*c, self.op, k),
            (Operand::Const(k), Operand::Col(c)) => (*c, self.op.flipped(), k),
            _ => return None,
        };
        // `col IN (single scalar)` is SQL equality.
        let op = if op == CmpOp::In { CmpOp::Eq } else { op };
        match k {
            Value::Int(i) => Some(ConstKernel::Int { col, op, rhs: *i }),
            Value::Float(f) => Some(ConstKernel::Float { col, op, rhs: *f }),
            Value::Str(s) => Some(ConstKernel::Str {
                col,
                op,
                rhs: s.clone(),
            }),
            Value::Bool(b) => Some(ConstKernel::Bool { col, op, rhs: *b }),
            Value::Null | Value::Eot => None,
        }
    }

    /// Evaluate the predicate over every tuple of a batch: one verdict per
    /// member, in batch order, verdict-for-verdict identical to mapping
    /// [`Predicate::eval`]. Uses a columnar kernel when the predicate
    /// qualifies (see the module docs for the dispatch rules).
    pub fn eval_batch(&self, batch: &TupleBatch) -> Vec<Option<bool>> {
        self.eval_batch_masked(batch, None)
    }

    /// [`Predicate::eval_batch`] restricted to the rows where `mask` is
    /// `true` (a fused conjunction's still-alive rows). Masked-out rows
    /// are neither gathered nor scalar-evaluated; their output slot is
    /// `None` and must not be interpreted as a verdict.
    pub fn eval_batch_masked(
        &self,
        batch: &TupleBatch,
        mask: Option<&[bool]>,
    ) -> Vec<Option<bool>> {
        debug_assert!(mask.is_none_or(|m| m.len() == batch.len()));
        match self.const_kernel() {
            Some(k) => k.eval_masked(self, batch, mask),
            None => batch
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if mask.is_some_and(|m| !m[i]) {
                        None
                    } else {
                        self.eval(t)
                    }
                })
                .collect(),
        }
    }
}

/// The comparison `lane-value <op> rhs` as a monomorphic function pointer,
/// selected once per batch. `PartialEq`/`PartialOrd` on the lane types
/// reproduce the scalar semantics exactly — including `f64`'s "NaN
/// compares false" (so `Ne` against NaN is true, as `!sql_eq` is).
fn ord_test<T: PartialOrd + ?Sized>(op: CmpOp) -> fn(&T, &T) -> bool {
    match op {
        // `In` only reaches a comparison kernel normalized to `Eq`; keep
        // the arm so the match is total.
        CmpOp::Eq | CmpOp::In => |a, b| a == b,
        CmpOp::Ne => |a, b| a != b,
        CmpOp::Lt => |a, b| a < b,
        CmpOp::Le => |a, b| a <= b,
        CmpOp::Gt => |a, b| a > b,
        CmpOp::Ge => |a, b| a >= b,
    }
}

impl ConstKernel {
    /// The column the kernel gathers.
    pub fn col(&self) -> ColRef {
        match self {
            ConstKernel::Int { col, .. }
            | ConstKernel::Float { col, .. }
            | ConstKernel::Str { col, .. }
            | ConstKernel::Bool { col, .. }
            | ConstKernel::InInt { col, .. }
            | ConstKernel::InStr { col, .. } => *col,
        }
    }

    /// Gather the kernel column once (typed lane + exceptions), compare
    /// the lane column-at-a-time, and scalar-evaluate only the exception
    /// rows. `pred` is the source predicate, the exceptions' ground truth.
    pub fn eval(&self, pred: &Predicate, batch: &TupleBatch) -> Vec<Option<bool>> {
        self.eval_masked(pred, batch, None)
    }

    /// [`ConstKernel::eval`] restricted to the rows where `mask` is `true`.
    pub fn eval_masked(
        &self,
        pred: &Predicate,
        batch: &TupleBatch,
        mask: Option<&[bool]>,
    ) -> Vec<Option<bool>> {
        match self {
            ConstKernel::Int { col, op, rhs } => {
                let test = ord_test::<i64>(*op);
                run(pred, batch, mask, *col, int_lane, |v| test(v, rhs))
            }
            ConstKernel::Float { col, op, rhs } => {
                let test = ord_test::<f64>(*op);
                run(pred, batch, mask, *col, float_lane, |v| test(v, rhs))
            }
            ConstKernel::Str { col, op, rhs } => {
                let test = ord_test::<str>(*op);
                let rhs: &str = rhs;
                run(pred, batch, mask, *col, str_lane, |v| test(v, rhs))
            }
            ConstKernel::Bool { col, op, rhs } => {
                let test = ord_test::<bool>(*op);
                run(pred, batch, mask, *col, bool_lane, |v| test(v, rhs))
            }
            ConstKernel::InInt { col, sorted } => run(pred, batch, mask, *col, int_lane, |v| {
                sorted.binary_search(v).is_ok()
            }),
            ConstKernel::InStr { col, sorted } => run(pred, batch, mask, *col, str_lane, |v| {
                sorted.binary_search_by(|s| s.as_ref().cmp(v)).is_ok()
            }),
        }
    }
}

/// Lane admission per kernel type (dispatch rule 3).
fn int_lane(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        _ => None,
    }
}

fn float_lane(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        // The same widening `sql_cmp`/`sql_eq` apply to Int-vs-Float.
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn str_lane(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn bool_lane(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Shared kernel tail: classify once, run the lane test over the typed
/// column, scalar-evaluate exactly the exception rows.
fn run<'a, T>(
    pred: &Predicate,
    batch: &'a TupleBatch,
    mask: Option<&[bool]>,
    col: ColRef,
    extract: impl Fn(&'a Value) -> Option<T>,
    test: impl Fn(&T) -> bool,
) -> Vec<Option<bool>> {
    let g = PartialGather::classify(batch, col, mask, extract);
    let mut out = vec![None; batch.len()];
    for (v, &row) in g.lane.iter().zip(&g.lane_rows) {
        out[row as usize] = Some(test(v));
    }
    for &row in &g.exceptions {
        out[row as usize] = pred.eval(&batch.as_slice()[row as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PredId, TableIdx, Tuple};

    fn t0(v: Value) -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![v])
    }

    fn batch(vals: Vec<Value>) -> TupleBatch {
        vals.into_iter().map(t0).collect()
    }

    fn sel(op: CmpOp, k: Value) -> Predicate {
        Predicate::selection(PredId(0), ColRef::new(TableIdx(0), 0), op, k)
    }

    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    #[test]
    fn recognizes_both_orientations() {
        let p = sel(CmpOp::Lt, Value::Int(5));
        match p.const_kernel().unwrap() {
            ConstKernel::Int { op, rhs, .. } => {
                assert_eq!(op, CmpOp::Lt);
                assert_eq!(rhs, 5);
            }
            other => panic!("expected Int kernel, got {other:?}"),
        }
        // 5 > col  ⇔  col < 5
        let flipped = Predicate::new(
            PredId(0),
            Operand::Const(Value::Int(5)),
            CmpOp::Gt,
            Operand::Col(ColRef::new(TableIdx(0), 0)),
        );
        match flipped.const_kernel().unwrap() {
            ConstKernel::Int { op, rhs, .. } => {
                assert_eq!(op, CmpOp::Lt);
                assert_eq!(rhs, 5);
            }
            other => panic!("expected Int kernel, got {other:?}"),
        }
    }

    #[test]
    fn recognizes_typed_constant_family() {
        assert!(matches!(
            sel(CmpOp::Le, Value::Float(2.5)).const_kernel(),
            Some(ConstKernel::Float { rhs, .. }) if rhs == 2.5
        ));
        assert!(matches!(
            sel(CmpOp::Eq, Value::str("abc")).const_kernel(),
            Some(ConstKernel::Str { .. })
        ));
        assert!(matches!(
            sel(CmpOp::Ne, Value::Bool(true)).const_kernel(),
            Some(ConstKernel::Bool { rhs: true, .. })
        ));
        // NULL/EOT constants are uniformly false: scalar loop.
        assert!(sel(CmpOp::Eq, Value::Null).const_kernel().is_none());
        assert!(sel(CmpOp::Eq, Value::Eot).const_kernel().is_none());
    }

    #[test]
    fn recognizes_homogeneous_in_lists_only() {
        let col = ColRef::new(TableIdx(0), 0);
        let ints = Predicate::in_list(
            PredId(0),
            col,
            vec![Value::Int(3), Value::Int(1), Value::Int(3)],
        );
        match ints.const_kernel().unwrap() {
            ConstKernel::InInt { sorted, .. } => assert_eq!(sorted, vec![1, 3]),
            other => panic!("expected InInt, got {other:?}"),
        }
        let strs = Predicate::in_list(PredId(0), col, vec![Value::str("b"), Value::str("a")]);
        assert!(matches!(
            strs.const_kernel(),
            Some(ConstKernel::InStr { .. })
        ));
        // Mixed lists need per-member coercion: scalar.
        let mixed = Predicate::in_list(PredId(0), col, vec![Value::Int(3), Value::Float(3.0)]);
        assert!(mixed.const_kernel().is_none());
        let empty = Predicate::in_list(PredId(0), col, vec![]);
        assert!(empty.const_kernel().is_none());
        // IN against a single scalar normalizes to the equality kernel.
        let single = sel(CmpOp::In, Value::Int(7));
        assert!(matches!(
            single.const_kernel(),
            Some(ConstKernel::Int {
                op: CmpOp::Eq,
                rhs: 7,
                ..
            })
        ));
    }

    #[test]
    fn rejects_non_vectorizable_shapes() {
        let join = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        );
        assert!(join.const_kernel().is_none());
    }

    #[test]
    fn all_typed_batches_run_kernel_and_match_scalar() {
        for op in OPS {
            for (konst, vals) in [
                (Value::Int(3), (0..7).map(Value::Int).collect::<Vec<_>>()),
                (
                    Value::Float(1.5),
                    vec![
                        Value::Float(1.0),
                        Value::Float(1.5),
                        Value::Int(2),
                        Value::Float(f64::NAN),
                    ],
                ),
                (
                    Value::str("m"),
                    ["a", "m", "z"].iter().map(|s| Value::str(s)).collect(),
                ),
                (
                    Value::Bool(true),
                    vec![Value::Bool(false), Value::Bool(true)],
                ),
            ] {
                let p = sel(op, konst);
                assert!(p.const_kernel().is_some(), "{p}");
                let b = batch(vals);
                let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
                assert_eq!(p.eval_batch(&b), want, "{p}");
            }
        }
    }

    #[test]
    fn one_exception_row_is_gathered_once_not_rescanned() {
        // 97 rows, one poison value: the classification pass visits each
        // row exactly once — the typed lane holds the 96 conforming rows
        // and the exception list exactly the poison row. (The PR-2 kernel
        // aborted and re-ran the scalar loop over all 97.)
        let col = ColRef::new(TableIdx(0), 0);
        let mut vals: Vec<Value> = (0..97).map(Value::Int).collect();
        vals[41] = Value::Null;
        let b = batch(vals);
        let g = PartialGather::classify(&b, col, None, int_lane);
        assert_eq!(g.lane.len(), 96);
        assert_eq!(g.exceptions, vec![41]);
        assert!(!g.lane_rows.contains(&41));
        assert_eq!(g.lane_rows.len() + g.exceptions.len(), b.len());
        // And the kernel's verdicts still match the scalar loop's.
        let p = sel(CmpOp::Ge, Value::Int(50));
        let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
        assert_eq!(p.eval_batch(&b), want);
        assert_eq!(want[41], Some(false)); // NULL >= 50 is not true
    }

    #[test]
    fn mixed_batch_splits_lane_and_exceptions() {
        let p = sel(CmpOp::Ne, Value::Int(3));
        let b = batch(vec![
            Value::Int(3),
            Value::Null,
            Value::str("x"),
            Value::Eot,
            Value::Float(3.0),
            Value::Int(4),
        ]);
        let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
        assert_eq!(p.eval_batch(&b), want);
        // NULL <> 3 is not true under SQL semantics; Str <> Int is;
        // Float(3.0) <> Int(3) coerces to false on the scalar path.
        assert_eq!(want[1], Some(false));
        assert_eq!(want[2], Some(true));
        assert_eq!(want[4], Some(false));
    }

    #[test]
    fn float_kernel_widens_int_rows() {
        let p = sel(CmpOp::Lt, Value::Float(2.5));
        let b = batch(vec![Value::Int(2), Value::Int(3), Value::Float(2.4)]);
        // All three rows enter the float lane: no exceptions.
        let g = PartialGather::classify(&b, ColRef::new(TableIdx(0), 0), None, float_lane);
        assert_eq!(g.lane, vec![2.0, 3.0, 2.4]);
        assert!(g.exceptions.is_empty());
        assert_eq!(p.eval_batch(&b), vec![Some(true), Some(false), Some(true)]);
    }

    #[test]
    fn nan_semantics_match_scalar() {
        for op in OPS {
            let p = sel(op, Value::Float(f64::NAN));
            let b = batch(vec![
                Value::Float(1.0),
                Value::Float(f64::NAN),
                Value::Int(0),
            ]);
            let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
            assert_eq!(p.eval_batch(&b), want, "op {op}");
        }
        // NaN <> anything is true (it never sql_eq's); orders are false.
        let ne = sel(CmpOp::Ne, Value::Float(f64::NAN));
        assert_eq!(
            ne.eval_batch(&batch(vec![Value::Float(f64::NAN)])),
            vec![Some(true)]
        );
    }

    #[test]
    fn in_kernels_match_scalar_membership() {
        let col = ColRef::new(TableIdx(0), 0);
        let p = Predicate::in_list(
            PredId(0),
            col,
            vec![Value::Int(2), Value::Int(5), Value::Int(9)],
        );
        let b = batch(vec![
            Value::Int(5),
            Value::Int(4),
            Value::Float(5.0), // exception: coerces to a match on the scalar path
            Value::Null,
        ]);
        let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
        assert_eq!(p.eval_batch(&b), want);
        assert_eq!(want, vec![Some(true), Some(false), Some(true), Some(false)]);

        let ps = Predicate::in_list(PredId(0), col, vec![Value::str("a"), Value::str("c")]);
        let b = batch(vec![Value::str("c"), Value::str("b"), Value::Int(1)]);
        let want: Vec<_> = b.iter().map(|t| ps.eval(t)).collect();
        assert_eq!(ps.eval_batch(&b), want);
        assert_eq!(want, vec![Some(true), Some(false), Some(false)]);
    }

    #[test]
    fn masked_eval_skips_dead_rows() {
        let p = sel(CmpOp::Gt, Value::Int(1));
        let b = batch(vec![Value::Int(0), Value::Int(2), Value::Int(3)]);
        let mask = vec![false, true, false];
        assert_eq!(
            p.eval_batch_masked(&b, Some(&mask)),
            vec![None, Some(true), None]
        );
        // The gather itself honors the mask: dead rows are not classified.
        let g = PartialGather::classify(&b, ColRef::new(TableIdx(0), 0), Some(&mask), int_lane);
        assert_eq!(g.lane, vec![2]);
        assert_eq!(g.lane_rows, vec![1]);
        assert!(g.exceptions.is_empty());
        // Scalar-path predicates honor it too.
        let join = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        );
        assert_eq!(
            join.eval_batch_masked(&b, Some(&mask)),
            vec![None, None, None]
        );
    }

    #[test]
    fn wrong_span_yields_none() {
        let p = sel(CmpOp::Eq, Value::Int(1));
        let b: TupleBatch = vec![Tuple::singleton_of(TableIdx(1), vec![Value::Int(1)])]
            .into_iter()
            .collect();
        assert_eq!(p.eval_batch(&b), vec![None]);
    }

    #[test]
    fn empty_batch_yields_empty_verdicts() {
        assert!(sel(CmpOp::Eq, Value::Int(1))
            .eval_batch(&TupleBatch::new())
            .is_empty());
    }
}
