//! Probe keys with precomputed equality hashes — the "hash-once" unit of
//! the flat probe pipeline.
//!
//! The eddy's hot path is probing SteM dictionaries with equality keys.
//! Before this vocabulary existed, every layer re-derived the same two
//! facts about each key: its equality normal form ([`Value::equality_key`])
//! and its stable hash ([`Value::stable_key_hash`]) — once in the shard
//! router, again in the hash index, again per duplicate key in an
//! envelope. [`HashedKey`] computes both exactly once, at the envelope
//! boundary, and every downstream consumer (shard routing, key-run dedup,
//! prehashed index lookups) reads the annotations instead of re-hashing.

use crate::value::Value;

/// A precomputed [`Value::stable_key_hash`], carried alongside a probe key
/// so downstream layers never re-hash. The wrapped hash is of the key's
/// *equality normal form*, so it can be compared across `Int`/`Float`
/// coercion boundaries and fed directly to `hash % num_shards` routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyHash(pub u64);

impl KeyHash {
    /// The raw 64-bit hash.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The shard a key with this hash routes to under a `num_shards`
    /// fan-out (callers handle the un-hashable overflow lane).
    #[inline]
    pub fn shard(self, num_shards: usize) -> usize {
        (self.0 % num_shards.max(1) as u64) as usize
    }
}

/// An equality probe key annotated with its normal form and hash, both
/// computed once ([`HashedKey::new`]).
///
/// `key` is the [`Value::equality_key`] normal form (`None` when the raw
/// value is NULL/EOT and can never match anything); `hash` is its
/// [`Value::stable_key_hash`] and is present iff `key` is — the two are
/// computed from the same value in one place, so they cannot disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct HashedKey {
    raw: Value,
    key: Option<Value>,
    hash: Option<KeyHash>,
}

impl HashedKey {
    /// Annotate a probe key: normalize and hash exactly once.
    pub fn new(raw: Value) -> HashedKey {
        let key = raw.equality_key();
        let hash = key.as_ref().and_then(Value::stable_key_hash).map(KeyHash);
        debug_assert_eq!(
            hash.map(KeyHash::get),
            raw.stable_key_hash(),
            "stable_key_hash must hash the equality normal form"
        );
        HashedKey { raw, key, hash }
    }

    /// The probe value as supplied (un-normalized) — what scalar
    /// `lookup_eq` fallback paths receive.
    #[inline]
    pub fn raw(&self) -> &Value {
        &self.raw
    }

    /// The equality normal form, `None` for NULL/EOT keys (which match
    /// nothing and take the overflow/empty path everywhere).
    #[inline]
    pub fn key(&self) -> Option<&Value> {
        self.key.as_ref()
    }

    /// The precomputed hash of the normal form.
    #[inline]
    pub fn hash(&self) -> Option<KeyHash> {
        self.hash
    }

    /// Two annotated keys resolve to identical lookup results iff their
    /// equality normal forms agree (`Int(5)` ≡ `Float(5.0)`; all NULL/EOT
    /// keys are mutually equivalent because they all match nothing). The
    /// hash comparison screens out almost everything before the value
    /// compare runs.
    #[inline]
    pub fn same_lookup(&self, other: &HashedKey) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_match_value_methods() {
        for v in [
            Value::Int(5),
            Value::Float(5.0),
            Value::Float(5.5),
            Value::str("abc"),
            Value::Bool(true),
            Value::Null,
            Value::Eot,
        ] {
            let hk = HashedKey::new(v.clone());
            assert_eq!(hk.raw(), &v);
            assert_eq!(hk.key(), v.equality_key().as_ref());
            assert_eq!(hk.hash().map(KeyHash::get), v.stable_key_hash());
        }
    }

    #[test]
    fn coerced_keys_are_same_lookup() {
        let int5 = HashedKey::new(Value::Int(5));
        let float5 = HashedKey::new(Value::Float(5.0));
        assert!(int5.same_lookup(&float5));
        assert!(!int5.same_lookup(&HashedKey::new(Value::Float(5.5))));
        // All un-hashable keys share the (empty) lookup result.
        let null = HashedKey::new(Value::Null);
        let eot = HashedKey::new(Value::Eot);
        assert!(null.same_lookup(&eot));
        assert!(!null.same_lookup(&int5));
    }

    #[test]
    fn shard_routing_uses_the_precomputed_hash() {
        let hk = HashedKey::new(Value::Int(42));
        let h = hk.hash().unwrap();
        assert_eq!(h.shard(4) as u64, h.get() % 4);
        assert_eq!(h.shard(1), 0);
        assert_eq!(h.shard(0), 0, "degenerate fan-out must not divide by 0");
    }
}
