//! Table schemas: column names and types.

use crate::{Result, StemsError, Value};

/// Logical column type. Used for validation at catalog/parse time; the
/// executor itself is dynamically typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Int,
    Float,
    Str,
    Bool,
}

impl ColumnType {
    /// Whether `v` is an acceptable value for this column. `Null` and `Eot`
    /// are acceptable in any column (EOT tuples reuse the table schema,
    /// paper §2.1.3).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (_, Value::Eot)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: &str, ty: ColumnType) -> Column {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// The schema of one base table: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs. Column names must be
    /// unique (case-insensitive, as in SQL).
    pub fn new(cols: Vec<Column>) -> Result<Schema> {
        for (i, a) in cols.iter().enumerate() {
            for b in cols.iter().skip(i + 1) {
                if a.name.eq_ignore_ascii_case(&b.name) {
                    return Err(StemsError::Schema(format!(
                        "duplicate column name `{}`",
                        a.name
                    )));
                }
            }
        }
        Ok(Schema { columns: cols })
    }

    /// Convenience constructor from `(name, type)` tuples; panics on
    /// duplicate names (intended for tests and examples).
    pub fn of(cols: &[(&str, ColumnType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Column::new(n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("valid schema")
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Resolve a column name (case-insensitive) to its position.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Validate that a slice of values conforms to this schema.
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(StemsError::Schema(format!(
                "row arity {} does not match schema arity {}",
                values.len(),
                self.arity()
            )));
        }
        for (col, v) in self.columns.iter().zip(values) {
            if !col.ty.admits(v) {
                return Err(StemsError::Schema(format!(
                    "value {v} not admissible for column `{}` of type {:?}",
                    col.name, col.ty
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs_schema() -> Schema {
        Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)])
    }

    #[test]
    fn col_index_is_case_insensitive() {
        let s = rs_schema();
        assert_eq!(s.col_index("KEY"), Some(0));
        assert_eq!(s.col_index("a"), Some(1));
        assert_eq!(s.col_index("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("x", ColumnType::Int),
            Column::new("X", ColumnType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, StemsError::Schema(_)));
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = rs_schema();
        assert!(s.check_row(&[Value::Int(1), Value::Int(2)]).is_ok());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        assert!(s.check_row(&[Value::Int(1), Value::str("oops")]).is_err());
    }

    #[test]
    fn eot_and_null_admitted_everywhere() {
        let s = rs_schema();
        assert!(s.check_row(&[Value::Int(1), Value::Eot]).is_ok());
        assert!(s.check_row(&[Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn float_column_admits_int() {
        let s = Schema::of(&[("f", ColumnType::Float)]);
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }
}
