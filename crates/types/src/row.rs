//! Base-table rows.

use crate::Value;
use std::fmt;
use std::sync::Arc;

/// One base-table row: an immutable, shared slice of values.
///
/// Rows are reference-counted ([`Arc<Row>`]) so a row stored in a SteM, held
/// in an AM lookup cache, and flowing through the eddy as a component of
/// several composite tuples is a single allocation. This mirrors the paper's
/// design where SteM indexes are "secondary indexes having pointers to the
/// same tuples in memory" (§2.1.4).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Row {
    values: Box<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row {
            values: values.into_boxed_slice(),
        }
    }

    /// Shared row, ready to be used as a tuple component.
    pub fn shared(values: Vec<Value>) -> Arc<Row> {
        Arc::new(Row::new(values))
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if any field carries the EOT marker — i.e. this row encodes an
    /// End-Of-Transmission tuple (paper §2.1.3).
    pub fn is_eot(&self) -> bool {
        self.values.iter().any(Value::is_eot)
    }

    /// Approximate heap footprint for memory accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Row>() + self.values.iter().map(Value::approx_bytes).sum::<usize>()
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_arity() {
        let r = Row::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), Some(&Value::Int(1)));
        assert_eq!(r.get(2), None);
    }

    #[test]
    fn eot_detection() {
        let normal = Row::new(vec![Value::Int(15), Value::str("John")]);
        let eot = Row::new(vec![Value::Int(15), Value::Eot]);
        assert!(!normal.is_eot());
        assert!(eot.is_eot());
    }

    #[test]
    fn rows_hash_and_eq_by_value() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Row::new(vec![Value::Int(1)]));
        assert!(set.contains(&Row::new(vec![Value::Int(1)])));
        assert!(!set.contains(&Row::new(vec![Value::Int(2)])));
    }

    #[test]
    fn debug_format() {
        let r = Row::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(format!("{r:?}"), "(1, a)");
        assert_eq!(format!("{r}"), "(1, a)");
    }
}
