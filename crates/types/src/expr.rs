//! The select-project-join predicate language.
//!
//! Queries are conjunctions of comparison predicates. Each predicate gets a
//! [`PredId`]; a tuple's "donebits" (paper §2.1.1: "the predicates that the
//! tuple has passed — our implementation uses a bitmap") are a [`PredSet`].

use crate::{TableIdx, TableSet, Tuple, Value};
use std::fmt;

/// Identifier of a predicate within one query (index into the query's
/// predicate list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u16);

impl PredId {
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// A bitmap of predicates a tuple has passed — the paper's "donebits".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PredSet(pub u64);

/// Maximum number of predicates per query.
pub const MAX_PREDS: usize = 64;

impl PredSet {
    pub const EMPTY: PredSet = PredSet(0);

    pub fn single(p: PredId) -> PredSet {
        debug_assert!((p.0 as usize) < MAX_PREDS);
        PredSet(1 << p.0)
    }

    pub fn all(n: usize) -> PredSet {
        assert!(n <= MAX_PREDS);
        if n == MAX_PREDS {
            PredSet(u64::MAX)
        } else {
            PredSet((1u64 << n) - 1)
        }
    }

    pub fn contains(self, p: PredId) -> bool {
        self.0 & (1 << p.0) != 0
    }

    pub fn insert(&mut self, p: PredId) {
        self.0 |= 1 << p.0;
    }

    pub fn union(self, other: PredSet) -> PredSet {
        PredSet(self.0 | other.0)
    }

    pub fn minus(self, other: PredSet) -> PredSet {
        PredSet(self.0 & !other.0)
    }

    pub fn is_superset_of(self, other: PredSet) -> bool {
        other.0 & !self.0 == 0
    }

    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn iter(self) -> impl Iterator<Item = PredId> {
        (0..MAX_PREDS as u16)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(PredId)
    }
}

/// A column reference `<table instance>.<column position>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColRef {
    pub table: TableIdx,
    pub col: usize,
}

impl ColRef {
    pub fn new(table: TableIdx, col: usize) -> ColRef {
        ColRef { table, col }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.col)
    }
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Membership in a constant list (`col IN (c1, c2, ...)`). The right
    /// operand is an [`Operand::List`]; against a single scalar this
    /// degenerates to [`CmpOp::Eq`] under SQL equality.
    In,
}

impl CmpOp {
    /// The operator with sides swapped (`a < b` ⇔ `b > a`). `In` has no
    /// column-on-the-right form (its right side is a constant list), so it
    /// flips to itself.
    pub fn flipped(self) -> CmpOp {
        use CmpOp::*;
        match self {
            Eq => Eq,
            Ne => Ne,
            Lt => Gt,
            Le => Ge,
            Gt => Lt,
            Ge => Le,
            In => In,
        }
    }

    /// Apply the operator to two values using SQL comparison semantics
    /// (NULL/EOT never satisfy any comparison, including `<>`).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        use CmpOp::*;
        if a.is_null() || a.is_eot() || b.is_null() || b.is_eot() {
            return false;
        }
        match self {
            Eq => a.sql_eq(b),
            Ne => !a.sql_eq(b),
            Lt => matches!(a.sql_cmp(b), Some(std::cmp::Ordering::Less)),
            Le => matches!(
                a.sql_cmp(b),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            ),
            Gt => matches!(a.sql_cmp(b), Some(std::cmp::Ordering::Greater)),
            Ge => matches!(
                a.sql_cmp(b),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ),
            // Membership against a single scalar is SQL equality; the list
            // form is handled in `Predicate::eval` (an `Operand::List` is
            // not a `Value`).
            In => a.sql_eq(b),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CmpOp::*;
        let s = match self {
            Eq => "=",
            Ne => "<>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            In => "IN",
        };
        write!(f, "{s}")
    }
}

/// One side of a comparison: a column, a constant, or a constant list
/// (the right side of an `IN` predicate).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    Col(ColRef),
    Const(Value),
    /// A constant list, valid only as the right side of [`CmpOp::In`].
    List(Vec<Value>),
}

impl Operand {
    /// The table instance referenced, if this operand is a column.
    pub fn table(&self) -> Option<TableIdx> {
        match self {
            Operand::Col(c) => Some(c.table),
            Operand::Const(_) | Operand::List(_) => None,
        }
    }

    /// Resolve the operand against a tuple. `None` if the tuple does not
    /// span the referenced table. A list does not resolve to a single
    /// value (`IN` is handled in [`Predicate::eval`]), so it yields `None`
    /// here, which makes a malformed `col < (list)` predicate evaluate to
    /// "not evaluable" rather than to a wrong verdict.
    pub fn resolve<'a>(&'a self, t: &'a Tuple) -> Option<&'a Value> {
        match self {
            Operand::Col(c) => t.value(c.table, c.col),
            Operand::Const(v) => Some(v),
            Operand::List(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Const(v) => write!(f, "{v}"),
            Operand::List(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The deterministic verdict function of a UDF-style predicate. Every
/// variant must be a pure function of the input value's *equality key*
/// (see [`Value::equality_key`]) so that memoizing verdicts per distinct
/// key — and sharing the memo across queries — is semantically invisible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdfKind {
    /// Passes iff `stable_key_hash(v) % 1000 < pass_per_mille`. A
    /// deterministic stand-in for an expensive black-box predicate (ML
    /// inference, remote lookup) with a tunable selectivity.
    HashSieve { pass_per_mille: u16 },
}

/// An expensive UDF-style selection: a deterministic verdict function plus
/// a per-call virtual latency, charged through the simulator's service
/// clock each time the verdict is actually *computed* (memo hits and
/// deduplicated rows pay nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdfSpec {
    pub udf: UdfKind,
    /// Virtual microseconds per computed verdict.
    pub cost_us: u64,
}

impl UdfSpec {
    pub fn hash_sieve(pass_per_mille: u16, cost_us: u64) -> UdfSpec {
        UdfSpec {
            udf: UdfKind::HashSieve { pass_per_mille },
            cost_us,
        }
    }

    /// The verdict on one input value. NULL/EOT inputs never pass (SQL
    /// semantics: the function is never invoked on NULL), and cost is not
    /// charged for them. Otherwise the verdict depends only on the value's
    /// equality key, so `5` and `5.0` agree.
    pub fn verdict(&self, v: &Value) -> bool {
        match self.udf {
            UdfKind::HashSieve { pass_per_mille } => match v.stable_key_hash() {
                Some(h) => h % 1000 < pass_per_mille as u64,
                None => false,
            },
        }
    }
}

/// What kind of expression a [`Predicate`] evaluates: a plain comparison
/// (the default, and the only kind until UDF predicates landed) or an
/// expensive UDF-style verdict function over the left column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// `left op right` under SQL comparison semantics.
    Cmp,
    /// `udf(left)` — the comparison fields are ignored for evaluation; the
    /// verdict comes from [`UdfSpec::verdict`] on the resolved left value.
    Udf(UdfSpec),
}

/// A comparison predicate over at most two table instances.
///
/// * selections: `col op const` (one table) — become Selection Modules;
/// * join predicates: `col op col` over two tables — enforced at SteMs and
///   index AMs (paper §2.1.4).
///
/// `kind` upgrades a selection to a UDF-style expensive predicate (see
/// [`ExprKind`]); every comparison constructor leaves it at
/// [`ExprKind::Cmp`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    pub id: PredId,
    pub left: Operand,
    pub op: CmpOp,
    pub right: Operand,
    pub kind: ExprKind,
}

impl Predicate {
    pub fn new(id: PredId, left: Operand, op: CmpOp, right: Operand) -> Predicate {
        Predicate {
            id,
            left,
            op,
            right,
            kind: ExprKind::Cmp,
        }
    }

    /// Shorthand for a two-column join predicate.
    pub fn join(id: PredId, l: ColRef, op: CmpOp, r: ColRef) -> Predicate {
        Predicate::new(id, Operand::Col(l), op, Operand::Col(r))
    }

    /// Shorthand for a column-vs-constant selection.
    pub fn selection(id: PredId, col: ColRef, op: CmpOp, v: Value) -> Predicate {
        Predicate::new(id, Operand::Col(col), op, Operand::Const(v))
    }

    /// Shorthand for a membership selection `col IN (items...)`.
    pub fn in_list(id: PredId, col: ColRef, items: Vec<Value>) -> Predicate {
        Predicate::new(id, Operand::Col(col), CmpOp::In, Operand::List(items))
    }

    /// An expensive UDF-style selection `udf(col)`. The comparison fields
    /// are placeholders (`col = TRUE`) never consulted for evaluation —
    /// the verdict comes from [`UdfSpec::verdict`].
    pub fn udf(id: PredId, col: ColRef, spec: UdfSpec) -> Predicate {
        let mut p = Predicate::new(
            id,
            Operand::Col(col),
            CmpOp::Eq,
            Operand::Const(Value::Bool(true)),
        );
        p.kind = ExprKind::Udf(spec);
        p
    }

    /// The UDF spec when this is a UDF-style predicate.
    pub fn udf_spec(&self) -> Option<&UdfSpec> {
        match &self.kind {
            ExprKind::Udf(spec) => Some(spec),
            ExprKind::Cmp => None,
        }
    }

    /// For a UDF predicate, the input column (always the left operand).
    pub fn udf_input_col(&self) -> Option<ColRef> {
        match (&self.kind, &self.left) {
            (ExprKind::Udf(_), Operand::Col(c)) => Some(*c),
            _ => None,
        }
    }

    /// The set of table instances the predicate mentions.
    pub fn tables(&self) -> TableSet {
        let mut s = TableSet::EMPTY;
        if let Some(t) = self.left.table() {
            s.insert(t);
        }
        if let Some(t) = self.right.table() {
            s.insert(t);
        }
        s
    }

    /// True if the predicate touches at most one table (a selection).
    pub fn is_selection(&self) -> bool {
        self.tables().len() <= 1
    }

    /// True if the predicate relates two distinct tables (a join predicate).
    pub fn is_join(&self) -> bool {
        self.tables().len() == 2
    }

    /// True if this predicate can be evaluated on a tuple spanning `span`.
    pub fn evaluable_on(&self, span: TableSet) -> bool {
        self.tables().is_subset_of(span)
    }

    /// For an equi-join predicate, the two column refs `(left, right)`.
    pub fn equi_join_cols(&self) -> Option<(ColRef, ColRef)> {
        match (&self.left, self.op, &self.right) {
            (Operand::Col(l), CmpOp::Eq, Operand::Col(r)) if l.table != r.table => Some((*l, *r)),
            _ => None,
        }
    }

    /// For a join predicate, the column on side `table` and the opposite
    /// operand, with the operator oriented so `table`'s column is on the
    /// left. `None` if `table` is not mentioned.
    pub fn oriented_for(&self, table: TableIdx) -> Option<(ColRef, CmpOp, &Operand)> {
        match (&self.left, &self.right) {
            (Operand::Col(l), r) if l.table == table => Some((*l, self.op, r)),
            (l, Operand::Col(r)) if r.table == table => Some((*r, self.op.flipped(), l)),
            _ => None,
        }
    }

    /// Evaluate the predicate over a tuple. `None` when the tuple does not
    /// span the predicate's tables; otherwise whether the predicate holds.
    /// EOT components make every predicate fail (EOT tuples never join).
    /// An `IN` predicate holds iff the left value SQL-equals any list
    /// member (so NULL/EOT on the left never match, and an empty list
    /// matches nothing).
    pub fn eval(&self, t: &Tuple) -> Option<bool> {
        if let ExprKind::Udf(spec) = &self.kind {
            let l = self.left.resolve(t)?;
            return Some(spec.verdict(l));
        }
        if self.op == CmpOp::In {
            if let Operand::List(items) = &self.right {
                let l = self.left.resolve(t)?;
                return Some(items.iter().any(|v| l.sql_eq(v)));
            }
        }
        let l = self.left.resolve(t)?;
        let r = self.right.resolve(t)?;
        Some(self.op.eval(l, r))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let ExprKind::Udf(spec) = &self.kind {
            let UdfKind::HashSieve { pass_per_mille } = spec.udf;
            return write!(
                f,
                "p{}: sieve({}, {}, {})",
                self.id.0, self.left, pass_per_mille, spec.cost_us
            );
        }
        write!(
            f,
            "p{}: {} {} {}",
            self.id.0, self.left, self.op, self.right
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Row;

    fn r_tuple(key: i64, a: i64) -> Tuple {
        Tuple::singleton(
            TableIdx(0),
            Row::shared(vec![Value::Int(key), Value::Int(a)]),
        )
    }

    fn s_tuple(x: i64) -> Tuple {
        Tuple::singleton(TableIdx(1), Row::shared(vec![Value::Int(x)]))
    }

    fn join_pred() -> Predicate {
        // R.a = S.x
        Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )
    }

    #[test]
    fn predset_ops() {
        let mut s = PredSet::EMPTY;
        s.insert(PredId(3));
        assert!(s.contains(PredId(3)));
        assert!(!s.contains(PredId(0)));
        assert_eq!(PredSet::all(4).len(), 4);
        assert!(PredSet::all(4).is_superset_of(s));
        assert_eq!(s.union(PredSet::single(PredId(1))).len(), 2);
        assert_eq!(PredSet::all(2).minus(PredSet::single(PredId(0))).len(), 1);
        let ids: Vec<_> = PredSet::all(3).iter().collect();
        assert_eq!(ids, vec![PredId(0), PredId(1), PredId(2)]);
        assert_eq!(PredSet::all(MAX_PREDS).len(), MAX_PREDS);
    }

    #[test]
    fn classify_selection_vs_join() {
        let p = join_pred();
        assert!(p.is_join());
        assert!(!p.is_selection());
        let s = Predicate::selection(
            PredId(1),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Gt,
            Value::Int(10),
        );
        assert!(s.is_selection());
        assert!(!s.is_join());
        assert_eq!(s.tables(), TableSet::single(TableIdx(0)));
    }

    #[test]
    fn eval_requires_span() {
        let p = join_pred();
        assert_eq!(p.eval(&r_tuple(1, 5)), None);
        let joined = r_tuple(1, 5).concat(&s_tuple(5));
        assert_eq!(p.eval(&joined), Some(true));
        let not = r_tuple(1, 5).concat(&s_tuple(6));
        assert_eq!(p.eval(&not), Some(false));
    }

    #[test]
    fn eot_never_satisfies() {
        let p = join_pred();
        let eot_s = Tuple::singleton_of(TableIdx(1), vec![Value::Eot]);
        let joined = r_tuple(1, 5).concat(&eot_s);
        assert_eq!(p.eval(&joined), Some(false));
    }

    #[test]
    fn oriented_for_flips_operator() {
        // R.a < S.x
        let p = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Lt,
            ColRef::new(TableIdx(1), 0),
        );
        let (c, op, _other) = p.oriented_for(TableIdx(1)).unwrap();
        assert_eq!(c.table, TableIdx(1));
        assert_eq!(op, CmpOp::Gt);
        let (c, op, _) = p.oriented_for(TableIdx(0)).unwrap();
        assert_eq!(c.table, TableIdx(0));
        assert_eq!(op, CmpOp::Lt);
        assert!(p.oriented_for(TableIdx(2)).is_none());
    }

    #[test]
    fn equi_join_cols_only_for_two_table_eq() {
        assert!(join_pred().equi_join_cols().is_some());
        let sel = Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Eq,
            Value::Int(1),
        );
        assert!(sel.equi_join_cols().is_none());
        let lt = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Lt,
            ColRef::new(TableIdx(1), 0),
        );
        assert!(lt.equi_join_cols().is_none());
    }

    #[test]
    fn cmp_op_eval_table() {
        use Value::Int;
        assert!(CmpOp::Eq.eval(&Int(1), &Int(1)));
        assert!(CmpOp::Ne.eval(&Int(1), &Int(2)));
        assert!(!CmpOp::Ne.eval(&Value::Null, &Int(2)));
        assert!(CmpOp::Lt.eval(&Int(1), &Int(2)));
        assert!(CmpOp::Le.eval(&Int(2), &Int(2)));
        assert!(CmpOp::Gt.eval(&Int(3), &Int(2)));
        assert!(CmpOp::Ge.eval(&Int(2), &Int(2)));
        assert!(!CmpOp::Lt.eval(&Int(2), &Value::Eot));
    }

    #[test]
    fn in_list_membership_follows_sql_equality() {
        let p = Predicate::in_list(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            vec![Value::Int(3), Value::Float(7.0), Value::str("x")],
        );
        assert!(p.is_selection());
        assert_eq!(p.eval(&r_tuple(0, 3)), Some(true));
        // Numeric coercion applies per member: Int(7) matches Float(7.0).
        assert_eq!(p.eval(&r_tuple(0, 7)), Some(true));
        assert_eq!(p.eval(&r_tuple(0, 4)), Some(false));
        // NULL on the left matches nothing, even a NULL list member.
        let null_t = Tuple::singleton(TableIdx(0), Row::shared(vec![Value::Int(0), Value::Null]));
        assert_eq!(p.eval(&null_t), Some(false));
        let with_null =
            Predicate::in_list(PredId(0), ColRef::new(TableIdx(0), 1), vec![Value::Null]);
        assert_eq!(with_null.eval(&null_t), Some(false));
        // Empty list matches nothing; wrong span is not evaluable.
        let empty = Predicate::in_list(PredId(0), ColRef::new(TableIdx(0), 1), vec![]);
        assert_eq!(empty.eval(&r_tuple(0, 3)), Some(false));
        assert_eq!(p.eval(&s_tuple(3)), None);
        assert_eq!(p.to_string(), "p0: t0.c1 IN (3, 7, x)");
    }

    #[test]
    fn malformed_list_shapes_do_not_panic() {
        // A list with a non-IN operator is "not evaluable", not a verdict.
        let bad = Predicate::new(
            PredId(0),
            Operand::Col(ColRef::new(TableIdx(0), 1)),
            CmpOp::Lt,
            Operand::List(vec![Value::Int(1)]),
        );
        assert_eq!(bad.eval(&r_tuple(0, 0)), None);
        // IN against a single scalar constant degenerates to equality.
        let single = Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::In,
            Value::Int(5),
        );
        assert_eq!(single.eval(&r_tuple(0, 5)), Some(true));
        assert_eq!(single.eval(&r_tuple(0, 6)), Some(false));
    }

    #[test]
    fn udf_verdict_is_deterministic_and_key_normalized() {
        let spec = UdfSpec::hash_sieve(500, 1000);
        let p = Predicate::udf(PredId(1), ColRef::new(TableIdx(0), 1), spec);
        assert!(p.is_selection());
        assert_eq!(p.udf_spec(), Some(&spec));
        assert_eq!(p.udf_input_col(), Some(ColRef::new(TableIdx(0), 1)));
        // Deterministic: same input, same verdict, matching the spec.
        for a in 0..50 {
            let want = spec.verdict(&Value::Int(a));
            assert_eq!(p.eval(&r_tuple(0, a)), Some(want));
            assert_eq!(p.eval(&r_tuple(0, a)), Some(want));
        }
        // Equality-key normalization: Int(7) and Float(7.0) agree.
        assert_eq!(
            spec.verdict(&Value::Int(7)),
            spec.verdict(&Value::Float(7.0))
        );
        // NULL/EOT/NaN never pass and never error.
        assert!(!spec.verdict(&Value::Null));
        assert!(!spec.verdict(&Value::Eot));
        let null_t = Tuple::singleton(TableIdx(0), Row::shared(vec![Value::Int(0), Value::Null]));
        assert_eq!(p.eval(&null_t), Some(false));
        // Wrong span: not evaluable, same as any other selection.
        assert_eq!(p.eval(&s_tuple(3)), None);
        // Selectivity endpoints.
        assert!(!UdfSpec::hash_sieve(0, 1).verdict(&Value::Int(3)));
        assert!(UdfSpec::hash_sieve(1000, 1).verdict(&Value::Int(3)));
        assert_eq!(p.to_string(), "p1: sieve(t0.c1, 500, 1000)");
    }

    #[test]
    fn selection_against_constant() {
        let sel = Predicate::selection(
            PredId(2),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Ge,
            Value::Int(5),
        );
        assert_eq!(sel.eval(&r_tuple(0, 7)), Some(true));
        assert_eq!(sel.eval(&r_tuple(0, 3)), Some(false));
    }
}
