//! A batch of tuples moving through the dataflow as one unit.
//!
//! The paper routes tuples one at a time; every hop pays a routing-policy
//! decision and a constraint check. [`TupleBatch`] is the vocabulary type
//! for the batched engine path: tuples that share a routing destination
//! travel together, so per-decision costs are amortized over the batch
//! while correctness constraints are still enforced per tuple.

use crate::tuple::Tuple;

/// An ordered batch of tuples sharing a routing destination.
///
/// This is a thin, intention-revealing wrapper over `Vec<Tuple>`: modules
/// receive a `TupleBatch`, process every member, and the per-envelope
/// overhead (queueing, event scheduling, policy choice) is paid once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleBatch {
    items: Vec<Tuple>,
}

impl TupleBatch {
    /// An empty batch.
    pub fn new() -> TupleBatch {
        TupleBatch { items: Vec::new() }
    }

    /// An empty batch with room for `cap` tuples.
    pub fn with_capacity(cap: usize) -> TupleBatch {
        TupleBatch {
            items: Vec::with_capacity(cap),
        }
    }

    /// A batch holding a single tuple.
    pub fn single(t: Tuple) -> TupleBatch {
        TupleBatch { items: vec![t] }
    }

    /// Append a tuple.
    pub fn push(&mut self, t: Tuple) {
        self.items.push(t);
    }

    /// Drop all tuples, keeping the allocation — lets pooled envelope
    /// buffers (the sharded probe fan-out) reuse capacity across calls.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over the member tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.items.iter()
    }

    /// The member tuples as a slice.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.items
    }

    /// Consume the batch, yielding the member tuples.
    pub fn into_vec(self) -> Vec<Tuple> {
        self.items
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(items: Vec<Tuple>) -> TupleBatch {
        TupleBatch { items }
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> TupleBatch {
        TupleBatch {
            items: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for TupleBatch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TableIdx;
    use crate::value::Value;

    fn t(k: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![Value::Int(k)])
    }

    #[test]
    fn construction_and_access() {
        let mut b = TupleBatch::new();
        assert!(b.is_empty());
        b.push(t(1));
        b.push(t(2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.iter().count(), 2);
        assert_eq!(b.as_slice().len(), 2);
        let v = b.clone().into_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(TupleBatch::from(v), b);
    }

    #[test]
    fn single_and_collect() {
        assert_eq!(TupleBatch::single(t(7)).len(), 1);
        let b: TupleBatch = (0..5).map(t).collect();
        assert_eq!(b.len(), 5);
        assert_eq!((&b).into_iter().count(), 5);
        assert_eq!(b.into_iter().count(), 5);
    }
}
