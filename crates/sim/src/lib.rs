//! Deterministic discrete-event simulation kernel.
//!
//! The ICDE 2003 SteMs paper evaluates against remote web sources, running
//! each query module in its own thread and implementing "index lookups ...
//! as sleeps of identical duration" (paper Table 3). The phenomena its
//! experiments exhibit — head-of-line blocking behind a slow index,
//! asynchronous probe/response overlap, scan-rate-limited hash joins,
//! competing access methods with different speeds — are *queueing* effects.
//!
//! This crate reproduces them with a single-threaded, virtual-time,
//! discrete-event simulator so every figure regenerates deterministically on
//! any machine. (The paper itself notes the modules' asynchrony "can also be
//! achieved in a single-threaded implementation".)
//!
//! Pieces:
//!
//! * [`Time`] / [`Duration`] — virtual time in microseconds, with second
//!   conversions matching the paper's axes.
//! * [`EventQueue`] — a binary-heap agenda with stable FIFO tie-breaking.
//! * [`LatencyModel`] — fixed / uniform / exponential service latencies.
//! * [`StallWindows`] — source unavailability intervals (for the
//!   source-stall experiments).
//! * [`SimRng`] — a small, seedable, splittable PRNG so workloads and
//!   policies are reproducible without threading a `rand` generic through
//!   every API.
//! * [`Metrics`] / [`Series`] — counters and `(time, value)` series with CSV
//!   export; these are what the bench binaries print.
//! * [`ascii_plot`] — terminal rendering of series for the bench harness.

mod agenda;
mod latency;
mod metrics;
mod plot;
mod rng;
mod time;

pub use agenda::EventQueue;
pub use latency::{LatencyModel, StallWindows};
pub use metrics::{Metrics, Series};
pub use plot::{ascii_plot, PlotSpec};
pub use rng::SimRng;
pub use time::{burst_gap, secs, secs_f, to_secs, Duration, Time, MICROS_PER_SEC};
