//! Seedable, splittable PRNG for deterministic simulations.

/// A small, fast, seedable PRNG (SplitMix64 core with an xorshift* output
/// path is overkill here; plain SplitMix64 passes the statistical bar for
/// workload generation and policy tie-breaking).
///
/// We deliberately do not depend on the `rand` crate anywhere in the
/// workspace: every stochastic choice in a simulation must derive from an
/// explicit seed, or figures stop being reproducible, and the workspace
/// stays dependency-free. `SimRng` provides the handful of distributions
/// the workload generators need directly.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> SimRng {
        // Avoid the all-zero fixed point without changing user-visible
        // behaviour for other seeds.
        SimRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derive an independent child generator; used to give each module its
    /// own stream so adding a module never perturbs another's randomness.
    pub fn split(&mut self, tag: u64) -> SimRng {
        let s = self.next_u64();
        SimRng::new(s ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping (slightly biased for huge n,
        // negligible for simulation workloads).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Exponentially distributed value with the given mean (inverse CDF).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit(); // avoid ln(0)
        -mean * u.ln()
    }
}

impl SimRng {
    /// Next raw 32-bit value (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_are_independent_of_sibling_consumption() {
        let mut root1 = SimRng::new(7);
        let mut c1 = root1.split(0);
        let _ = c1.next_u64(); // consume from child 1
        let c2 = root1.split(1);

        let mut root2 = SimRng::new(7);
        let _c1b = root2.split(0); // do NOT consume
        let c2b = root2.split(1);
        assert_eq!(c2.clone().next_u64(), c2b.clone().next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_mean_is_roughly_half() {
        let mut r = SimRng::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn exp_mean_matches() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SimRng::new(19);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fill_bytes_produces_nonzero_output() {
        let mut r = SimRng::new(23);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
