//! Counters and time series.
//!
//! The paper's figures plot cumulative quantities ("number of result tuples
//! output", "number of index probes made") against time. [`Series`] records
//! exactly that: monotone `(time, value)` step points. [`Metrics`] is a
//! string-keyed registry of counters and series attached to an execution.

use crate::{to_secs, Time};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named time series of `(virtual time, value)` observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    points: Vec<(Time, f64)>,
}

impl Series {
    pub fn new() -> Series {
        Series::default()
    }

    /// Append an observation. Time must be non-decreasing.
    pub fn push(&mut self, t: Time, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(pt, _)| *pt <= t),
            "series time went backwards"
        );
        self.points.push((t, v));
    }

    /// All raw points.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// Last observed value (0.0 if empty).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(0.0, |(_, v)| *v)
    }

    /// Time of the last observation.
    pub fn end_time(&self) -> Option<Time> {
        self.points.last().map(|(t, _)| *t)
    }

    /// The value in effect at time `t` (step interpolation; 0.0 before the
    /// first point).
    pub fn value_at(&self, t: Time) -> f64 {
        match self.points.partition_point(|(pt, _)| *pt <= t) {
            0 => 0.0,
            i => self.points[i - 1].1,
        }
    }

    /// Resample to `n+1` equally spaced points over `[0, horizon]` — used
    /// for printing figure rows and for CSV export.
    pub fn sample_grid(&self, horizon: Time, n: usize) -> Vec<(Time, f64)> {
        assert!(n > 0);
        (0..=n)
            .map(|i| {
                let t = horizon / n as u64 * i as u64;
                (t, self.value_at(t))
            })
            .collect()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Metric registry for one execution: monotone counters (most of which are
/// mirrored into series for plotting) and named series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Series>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `delta` to a counter and record the new value in the counter's
    /// series at time `t`.
    pub fn bump(&mut self, name: &str, t: Time, delta: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c += delta;
        let v = *c as f64;
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// Record a raw (non-counter) observation in a named series, e.g.
    /// memory footprint or a routing fraction.
    pub fn observe(&mut self, name: &str, t: Time, v: f64) {
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// Current counter value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fetch a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Render selected series as CSV: `time_secs,<name1>,<name2>,...` on a
    /// uniform grid of `n+1` rows over `[0, horizon]`.
    pub fn to_csv(&self, names: &[&str], horizon: Time, n: usize) -> String {
        let mut out = String::new();
        out.push_str("time_secs");
        for name in names {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        for i in 0..=n {
            let t = horizon / n as u64 * i as u64;
            let _ = write!(out, "{:.3}", to_secs(t));
            for name in names {
                let v = self.series(name).map_or(0.0, |s| s.value_at(t));
                let _ = write!(out, ",{v:.3}");
            }
            out.push('\n');
        }
        out
    }

    /// Merge another metrics object (used when a run is composed of phases).
    pub fn absorb(&mut self, other: Metrics) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, s) in other.series {
            let entry = self.series.entry(k).or_default();
            for (t, v) in s.points {
                entry.points.push((t, v));
            }
            entry.points.sort_by_key(|(t, _)| *t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_step_interpolation() {
        let mut s = Series::new();
        s.push(10, 1.0);
        s.push(20, 2.0);
        s.push(20, 3.0);
        assert_eq!(s.value_at(5), 0.0);
        assert_eq!(s.value_at(10), 1.0);
        assert_eq!(s.value_at(15), 1.0);
        assert_eq!(s.value_at(20), 3.0);
        assert_eq!(s.value_at(100), 3.0);
        assert_eq!(s.last_value(), 3.0);
        assert_eq!(s.end_time(), Some(20));
    }

    #[test]
    fn sample_grid_covers_horizon() {
        let mut s = Series::new();
        s.push(0, 0.0);
        s.push(50, 5.0);
        let g = s.sample_grid(100, 4);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], (0, 0.0));
        assert_eq!(g[2], (50, 5.0));
        assert_eq!(g[4], (100, 5.0));
    }

    #[test]
    fn counters_mirror_into_series() {
        let mut m = Metrics::new();
        m.bump("results", 100, 1);
        m.bump("results", 200, 2);
        assert_eq!(m.counter("results"), 3);
        assert_eq!(m.counter("absent"), 0);
        let s = m.series("results").unwrap();
        assert_eq!(s.points(), &[(100, 1.0), (200, 3.0)]);
    }

    #[test]
    fn observe_records_raw_values() {
        let mut m = Metrics::new();
        m.observe("mem", 0, 10.0);
        m.observe("mem", 5, 7.0); // may go down
        assert_eq!(m.series("mem").unwrap().value_at(6), 7.0);
    }

    #[test]
    fn csv_layout() {
        let mut m = Metrics::new();
        m.bump("a", 0, 1);
        m.bump("b", 50, 2);
        let csv = m.to_csv(&["a", "b"], 100, 2);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_secs,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.000,1.000,0.000"));
        assert!(lines[3].contains(",1.000,2.000"));
    }

    #[test]
    fn absorb_merges() {
        let mut a = Metrics::new();
        a.bump("x", 1, 1);
        let mut b = Metrics::new();
        b.bump("x", 2, 5);
        b.observe("y", 3, 1.5);
        a.absorb(b);
        assert_eq!(a.counter("x"), 6);
        assert!(a.series("y").is_some());
    }
}
