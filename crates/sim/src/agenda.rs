//! The event agenda: a time-ordered queue with stable FIFO tie-breaking.

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the agenda. Ordered by time, then insertion sequence, so
/// same-time events fire in the order they were scheduled — this is what
/// makes the whole simulation deterministic.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event agenda.
///
/// ```
/// use stems_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: 0,
        }
    }

    /// Schedule `event` at absolute virtual time `time`.
    ///
    /// Panics (debug builds) if `time` is before the last popped event —
    /// scheduling into the past would break causality.
    pub fn push(&mut self, time: Time, event: E) {
        debug_assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5, ());
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(1, "a");
        q.push(5, "c");
        assert_eq!(q.pop(), Some((1, "a")));
        q.push(3, "b");
        q.push(5, "d");
        assert_eq!(q.pop(), Some((3, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), Some((5, "d")));
    }
}
