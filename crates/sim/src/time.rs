//! Virtual time.

/// Virtual time in microseconds since query start.
///
/// Microsecond resolution lets us model both the paper's multi-second index
/// latencies and sub-millisecond per-tuple routing costs on one axis.
pub type Time = u64;

/// A span of virtual time, also in microseconds.
pub type Duration = u64;

/// Microseconds per (virtual) second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// `n` virtual seconds as a [`Duration`].
pub const fn secs(n: u64) -> Duration {
    n * MICROS_PER_SEC
}

/// Fractional virtual seconds as a [`Duration`] (rounded to the nearest µs).
pub fn secs_f(n: f64) -> Duration {
    debug_assert!(n >= 0.0, "negative duration");
    (n * MICROS_PER_SEC as f64).round() as Duration
}

/// A [`Time`]/[`Duration`] as fractional seconds — the unit of the paper's
/// figure axes.
pub fn to_secs(t: Time) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(secs(3), 3_000_000);
        assert_eq!(secs_f(1.5), 1_500_000);
        assert_eq!(to_secs(secs(400)), 400.0);
        assert!((to_secs(secs_f(0.25)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn secs_f_rounds() {
        assert_eq!(secs_f(0.0000004), 0);
        assert_eq!(secs_f(0.0000006), 1);
    }
}
