//! Virtual time.

/// Virtual time in microseconds since query start.
///
/// Microsecond resolution lets us model both the paper's multi-second index
/// latencies and sub-millisecond per-tuple routing costs on one axis.
pub type Time = u64;

/// A span of virtual time, also in microseconds.
pub type Duration = u64;

/// Microseconds per (virtual) second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// `n` virtual seconds as a [`Duration`].
pub const fn secs(n: u64) -> Duration {
    n * MICROS_PER_SEC
}

/// Fractional virtual seconds as a [`Duration`] (rounded to the nearest µs).
pub fn secs_f(n: f64) -> Duration {
    debug_assert!(n >= 0.0, "negative duration");
    (n * MICROS_PER_SEC as f64).round() as Duration
}

/// A [`Time`]/[`Duration`] as fractional seconds — the unit of the paper's
/// figure axes.
pub fn to_secs(t: Time) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

/// Cadence of chunked (bursty) emission: the virtual time for `n` items
/// to accumulate at one `item_gap` each, delivered together as a single
/// event. Floored at one µs so even a degenerate burst advances time —
/// the discrete-event agenda must never re-fire at the same instant
/// forever.
pub const fn burst_gap(item_gap: Duration, n: usize) -> Duration {
    let d = item_gap.saturating_mul(n as u64);
    if d == 0 {
        1
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(secs(3), 3_000_000);
        assert_eq!(secs_f(1.5), 1_500_000);
        assert_eq!(to_secs(secs(400)), 400.0);
        assert!((to_secs(secs_f(0.25)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn secs_f_rounds() {
        assert_eq!(secs_f(0.0000004), 0);
        assert_eq!(secs_f(0.0000006), 1);
    }

    #[test]
    fn burst_gap_scales_and_floors() {
        assert_eq!(burst_gap(100, 1), 100);
        assert_eq!(burst_gap(100, 7), 700);
        assert_eq!(burst_gap(100, 0), 1);
        assert_eq!(burst_gap(0, 5), 1);
        assert_eq!(burst_gap(u64::MAX, 2), u64::MAX);
    }
}
