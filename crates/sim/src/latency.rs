//! Service latency models and source stall windows.

use crate::{secs_f, Duration, SimRng, Time};

/// How long one service operation (an index lookup, a scan page fetch)
/// takes in virtual time.
///
/// The paper's Table 3 uses "sleeps of identical duration" —
/// [`LatencyModel::Fixed`]. The other variants support the robustness
/// ablations (benchmarks confirm the figure shapes survive latency jitter).
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every operation takes exactly this long.
    Fixed(Duration),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: Duration, hi: Duration },
    /// Exponentially distributed with the given mean.
    Exponential { mean: Duration },
}

impl LatencyModel {
    /// Fixed latency expressed in fractional seconds.
    pub fn fixed_secs(s: f64) -> LatencyModel {
        LatencyModel::Fixed(secs_f(s))
    }

    /// Draw one service duration.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency with lo > hi");
                lo + rng.below(hi - lo + 1)
            }
            LatencyModel::Exponential { mean } => rng.exp(*mean as f64).round() as Duration,
        }
    }

    /// The mean of the model (used by cost-estimating policies as a prior).
    pub fn mean(&self) -> Duration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { lo, hi } => (lo + hi) / 2,
            LatencyModel::Exponential { mean } => *mean,
        }
    }
}

/// Intervals during which a source is unavailable.
///
/// Models the paper's motivating "volatility of distributed data sources":
/// a stalled source accepts no work until the window ends; operations
/// requested during a stall are delayed to the window's end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallWindows {
    /// Sorted, non-overlapping `[start, end)` windows.
    windows: Vec<(Time, Time)>,
}

impl StallWindows {
    pub fn none() -> StallWindows {
        StallWindows::default()
    }

    /// Build from `[start, end)` pairs; they are sorted and merged.
    pub fn new(mut windows: Vec<(Time, Time)>) -> StallWindows {
        windows.retain(|(s, e)| e > s);
        windows.sort_unstable();
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
                _ => merged.push((s, e)),
            }
        }
        StallWindows { windows: merged }
    }

    /// Is the source stalled at `t`?
    pub fn stalled_at(&self, t: Time) -> bool {
        self.windows.iter().any(|(s, e)| (*s..*e).contains(&t))
    }

    /// The earliest time ≥ `t` at which the source is available.
    pub fn next_available(&self, t: Time) -> Time {
        for (s, e) in &self.windows {
            if (*s..*e).contains(&t) {
                return *e;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secs;

    #[test]
    fn fixed_always_same() {
        let m = LatencyModel::fixed_secs(1.5);
        let mut rng = SimRng::new(1);
        assert_eq!(m.sample(&mut rng), 1_500_000);
        assert_eq!(m.sample(&mut rng), 1_500_000);
        assert_eq!(m.mean(), 1_500_000);
    }

    #[test]
    fn uniform_in_bounds() {
        let m = LatencyModel::Uniform { lo: 10, hi: 20 };
        let mut rng = SimRng::new(2);
        for _ in 0..500 {
            let d = m.sample(&mut rng);
            assert!((10..=20).contains(&d));
        }
        assert_eq!(m.mean(), 15);
    }

    #[test]
    fn exponential_mean_close() {
        let m = LatencyModel::Exponential { mean: 1000 };
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean={mean}");
    }

    #[test]
    fn stall_windows_merge_and_query() {
        let w = StallWindows::new(vec![
            (secs(10), secs(20)),
            (secs(15), secs(25)),
            (secs(40), secs(41)),
        ]);
        assert!(!w.stalled_at(secs(9)));
        assert!(w.stalled_at(secs(10)));
        assert!(w.stalled_at(secs(24)));
        assert!(!w.stalled_at(secs(25)));
        assert_eq!(w.next_available(secs(12)), secs(25));
        assert_eq!(w.next_available(secs(40)), secs(41));
        assert_eq!(w.next_available(secs(5)), secs(5));
    }

    #[test]
    fn empty_windows_never_stall() {
        let w = StallWindows::none();
        assert!(!w.stalled_at(0));
        assert_eq!(w.next_available(123), 123);
    }

    #[test]
    fn degenerate_windows_dropped() {
        let w = StallWindows::new(vec![(5, 5), (7, 6)]);
        assert!(!w.stalled_at(5));
        assert!(!w.stalled_at(6));
    }
}
