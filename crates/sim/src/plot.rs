//! ASCII rendering of time series, used by the bench binaries to print the
//! paper's figures directly in the terminal.

use crate::{to_secs, Series, Time};
use std::fmt::Write as _;

/// Plot layout parameters.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Plot width in character columns (x axis).
    pub width: usize,
    /// Plot height in character rows (y axis).
    pub height: usize,
    /// Horizon of the x axis in virtual time (series are clipped to this).
    pub horizon: Time,
    /// Y-axis label.
    pub y_label: String,
    /// Title printed above the plot.
    pub title: String,
}

impl Default for PlotSpec {
    fn default() -> Self {
        PlotSpec {
            width: 72,
            height: 20,
            horizon: 0,
            y_label: String::new(),
            title: String::new(),
        }
    }
}

/// Render one or more `(name, series)` pairs as an ASCII chart. Each series
/// is drawn with its own glyph; a legend is appended.
///
/// This is step-plotting of cumulative curves — good enough to eyeball the
/// paper's "parabolic vs linear" and crossover claims in a terminal.
pub fn ascii_plot(spec: &PlotSpec, series: &[(&str, &Series)]) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let horizon = if spec.horizon > 0 {
        spec.horizon
    } else {
        series
            .iter()
            .filter_map(|(_, s)| s.end_time())
            .max()
            .unwrap_or(1)
    };
    let y_max = series
        .iter()
        .map(|(_, s)| s.value_at(horizon))
        .fold(0.0f64, f64::max)
        .max(1e-9);

    let w = spec.width.max(10);
    let h = spec.height.max(5);
    let mut grid = vec![vec![' '; w]; h];

    for (idx, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[idx % GLYPHS.len()];
        #[allow(clippy::needless_range_loop)]
        for col in 0..w {
            // Last column lands exactly on the horizon so completed curves
            // touch the top row.
            let t = (horizon as u128 * col as u128 / (w as u128 - 1)) as Time;
            let v = s.value_at(t);
            let row_f = (v / y_max) * (h as f64 - 1.0);
            let row = h - 1 - (row_f.round() as usize).min(h - 1);
            if grid[row][col] == ' ' {
                grid[row][col] = glyph;
            }
        }
    }

    let mut out = String::new();
    if !spec.title.is_empty() {
        let _ = writeln!(out, "{}", spec.title);
    }
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_max * (h - 1 - i) as f64 / (h as f64 - 1.0);
        let _ = writeln!(out, "{y_val:>9.1} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(w));
    let _ = writeln!(
        out,
        "{:>9} 0{}{:.0}s",
        "",
        " ".repeat(w.saturating_sub(6)),
        to_secs(horizon)
    );
    let legend = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect::<Vec<_>>()
        .join("   ");
    let _ = writeln!(out, "{:>10}{}", "", legend);
    if !spec.y_label.is_empty() {
        let _ = writeln!(out, "{:>10}y: {}", "", spec.y_label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secs;

    fn linear_series(rate: f64, end: Time, step: Time) -> Series {
        let mut s = Series::new();
        let mut t = 0;
        while t <= end {
            s.push(t, rate * to_secs(t));
            t += step;
        }
        s
    }

    #[test]
    fn plot_contains_legend_and_axes() {
        let s = linear_series(2.0, secs(100), secs(1));
        let spec = PlotSpec {
            title: "results".into(),
            horizon: secs(100),
            ..PlotSpec::default()
        };
        let out = ascii_plot(&spec, &[("stems", &s)]);
        assert!(out.contains("results"));
        assert!(out.contains("* stems"));
        assert!(out.contains("100s"));
    }

    #[test]
    fn taller_curve_reaches_top_row() {
        let hi = linear_series(10.0, secs(10), secs(1));
        let lo = linear_series(1.0, secs(10), secs(1));
        let spec = PlotSpec {
            horizon: secs(10),
            ..PlotSpec::default()
        };
        let out = ascii_plot(&spec, &[("hi", &hi), ("lo", &lo)]);
        let first_plot_line = out.lines().next().unwrap();
        assert!(first_plot_line.contains('*'));
    }

    #[test]
    fn empty_series_plot_does_not_panic() {
        let s = Series::new();
        let out = ascii_plot(&PlotSpec::default(), &[("empty", &s)]);
        assert!(out.contains("empty"));
    }
}
