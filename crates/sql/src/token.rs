//! SQL tokenizer.

use stems_types::{Result, StemsError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (case preserved; keyword checks are
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Is this the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(StemsError::Parse("unterminated string literal".into()))
                        }
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    && starts_operand_position(&out)) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == '.'
                    && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        StemsError::Parse(format!("bad float literal `{text}`"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        StemsError::Parse(format!("bad integer literal `{text}`"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(StemsError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

/// Heuristic: a `-` starts a negative literal only where an operand can
/// begin (start, after an operator/comma/paren).
fn starts_operand_position(tokens: &[Token]) -> bool {
    matches!(
        tokens.last(),
        None | Some(
            Token::Comma
                | Token::LParen
                | Token::Eq
                | Token::Ne
                | Token::Lt
                | Token::Le
                | Token::Gt
                | Token::Ge
        )
    ) || matches!(tokens.last(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("where") || s.eq_ignore_ascii_case("and"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let toks = tokenize("SELECT * FROM r, s WHERE r.a = s.x").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Star);
        assert!(toks[2].is_kw("FROM"));
        assert!(toks.contains(&Token::Comma));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <= b >= c <> d != e < f > g").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Le,
                &Token::Ge,
                &Token::Ne,
                &Token::Ne,
                &Token::Lt,
                &Token::Gt
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        let toks = tokenize("WHERE x = -5 AND y = 3.25 AND z = 42").unwrap();
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Float(3.25)));
        assert!(toks.contains(&Token::Int(42)));
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = tokenize("name = 'O''Brien'").unwrap();
        assert!(toks.contains(&Token::Str("O'Brien".into())));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn minus_between_identifiers_is_error_not_negative() {
        // `a - b` is not part of our grammar; the tokenizer should not
        // silently eat it as a negative literal.
        assert!(tokenize("a - b").is_err());
    }
}
