//! A small SQL front end for select-project-join queries.
//!
//! Covers exactly the query class the paper's architecture executes
//! (§2.2): conjunctive `SELECT ... FROM ... WHERE ...` with comparison
//! predicates — no subqueries, grouping or aggregation (the paper assumes
//! those "are implemented above the eddy").
//!
//! ```
//! use stems_catalog::{Catalog, ScanSpec, TableDef};
//! use stems_sql::parse_query;
//! use stems_types::{ColumnType, Schema};
//!
//! let mut catalog = Catalog::new();
//! let r = catalog
//!     .add_table(TableDef::new(
//!         "r",
//!         Schema::of(&[("k", ColumnType::Int), ("a", ColumnType::Int)]),
//!     ))
//!     .unwrap();
//! let s = catalog
//!     .add_table(TableDef::new("s", Schema::of(&[("x", ColumnType::Int)])))
//!     .unwrap();
//! catalog.add_scan(r, ScanSpec::default()).unwrap();
//! catalog.add_scan(s, ScanSpec::default()).unwrap();
//!
//! let q = parse_query(&catalog, "SELECT r.k FROM r, s WHERE r.a = s.x AND r.k > 5").unwrap();
//! assert_eq!(q.n_tables(), 2);
//! assert_eq!(q.predicates.len(), 2);
//! ```

mod parser;
mod token;

pub use parser::parse_query;
pub use token::{tokenize, Token};
