//! Recursive-descent parser + name resolution against a catalog.

use crate::token::{tokenize, Token};
use stems_catalog::{Catalog, QuerySpec, TableInstance};
use stems_types::{
    CmpOp, ColRef, Operand, PredId, Predicate, Result, StemsError, TableIdx, UdfSpec, Value,
};

/// Parse an SPJ query and resolve names against `catalog`.
///
/// Grammar:
/// ```text
/// query   := SELECT proj FROM table (, table)* [WHERE pred (AND pred)*]
/// proj    := * | colref (, colref)*
/// table   := ident [[AS] ident]
/// pred    := operand cmp operand | colref IN ( const (, const)* )
///          | SIEVE ( colref , int , int )
/// operand := colref | const
/// const   := int | float | string
/// colref  := [ident .] ident
/// cmp     := = | <> | != | < | <= | > | >=
/// ```
pub fn parse_query(catalog: &Catalog, sql: &str) -> Result<QuerySpec> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
    };
    p.expect_kw("SELECT")?;
    let proj = p.parse_projection()?;
    p.expect_kw("FROM")?;
    let tables = p.parse_from(catalog)?;
    let mut predicates = Vec::new();
    if p.peek_kw("WHERE") {
        p.pos += 1;
        loop {
            predicates.push(p.parse_predicate(&tables, catalog, predicates.len())?);
            if p.peek_kw("AND") {
                p.pos += 1;
            } else {
                break;
            }
        }
    }
    if p.pos != p.toks.len() {
        return Err(StemsError::Parse(format!(
            "unexpected trailing input at token {}",
            p.pos
        )));
    }
    // Resolve projection now that the FROM list is known.
    let projection = match proj {
        Proj::Star => None,
        Proj::Cols(cols) => Some(
            cols.into_iter()
                .map(|c| resolve_col(&c, &tables, catalog))
                .collect::<Result<Vec<_>>>()?,
        ),
    };
    QuerySpec::new(catalog, tables, predicates, projection)
}

enum Proj {
    Star,
    Cols(Vec<RawCol>),
}

/// An unresolved `[alias.]column` reference.
#[derive(Debug, Clone)]
struct RawCol {
    alias: Option<String>,
    col: String,
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.peek_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(StemsError::Parse(format!(
                "expected {kw} at token {}",
                self.pos
            )))
        }
    }

    fn take_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(StemsError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_projection(&mut self) -> Result<Proj> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(Proj::Star);
        }
        let mut cols = vec![self.parse_rawcol()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            cols.push(self.parse_rawcol()?);
        }
        Ok(Proj::Cols(cols))
    }

    fn parse_rawcol(&mut self) -> Result<RawCol> {
        let first = self.take_ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let col = self.take_ident()?;
            Ok(RawCol {
                alias: Some(first),
                col,
            })
        } else {
            Ok(RawCol {
                alias: None,
                col: first,
            })
        }
    }

    fn parse_from(&mut self, catalog: &Catalog) -> Result<Vec<TableInstance>> {
        let mut tables = Vec::new();
        loop {
            let name = self.take_ident()?;
            let source = catalog
                .source_by_name(&name)
                .ok_or_else(|| StemsError::UnknownName(format!("table `{name}`")))?;
            // optional [AS] alias — but not the keywords WHERE/AND.
            let mut alias = name.clone();
            if self.peek_kw("AS") {
                self.pos += 1;
                alias = self.take_ident()?;
            } else if let Some(Token::Ident(s)) = self.peek() {
                if !s.eq_ignore_ascii_case("WHERE") {
                    alias = s.clone();
                    self.pos += 1;
                }
            }
            tables.push(TableInstance { source, alias });
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(tables)
    }

    fn parse_predicate(
        &mut self,
        tables: &[TableInstance],
        catalog: &Catalog,
        idx: usize,
    ) -> Result<Predicate> {
        // `SIEVE(col, pass_per_mille, cost_us)` — an expensive UDF-style
        // selection. The function-name-then-LParen shape disambiguates it
        // from a bare column reference.
        if self.peek_kw("SIEVE") && self.toks.get(self.pos + 1) == Some(&Token::LParen) {
            self.pos += 2;
            let raw = self.parse_rawcol()?;
            let col = resolve_col(&raw, tables, catalog)?;
            self.expect_tok(&Token::Comma, "expected , after SIEVE input column")?;
            let ppm = self.take_uint("SIEVE pass-per-mille")?;
            if ppm > 1000 {
                return Err(StemsError::Parse(format!(
                    "SIEVE pass-per-mille {ppm} exceeds 1000"
                )));
            }
            self.expect_tok(&Token::Comma, "expected , after SIEVE selectivity")?;
            let cost_us = self.take_uint("SIEVE cost")?;
            self.expect_tok(&Token::RParen, "expected ) closing SIEVE call")?;
            return Ok(Predicate::udf(
                PredId(idx as u16),
                col,
                UdfSpec::hash_sieve(ppm as u16, cost_us),
            ));
        }
        let left = self.parse_operand(tables, catalog)?;
        if self.peek_kw("IN") {
            self.pos += 1;
            if !matches!(left, Operand::Col(_)) {
                return Err(StemsError::Parse("IN requires a column on the left".into()));
            }
            if self.peek() != Some(&Token::LParen) {
                return Err(StemsError::Parse("expected ( after IN".into()));
            }
            self.pos += 1;
            let mut items = vec![self.parse_const()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                items.push(self.parse_const()?);
            }
            if self.peek() != Some(&Token::RParen) {
                return Err(StemsError::Parse("expected ) closing IN list".into()));
            }
            self.pos += 1;
            return Ok(Predicate::new(
                PredId(idx as u16),
                left,
                CmpOp::In,
                Operand::List(items),
            ));
        }
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(StemsError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        let right = self.parse_operand(tables, catalog)?;
        if matches!((&left, &right), (Operand::Const(_), Operand::Const(_))) {
            return Err(StemsError::Parse("predicate compares two constants".into()));
        }
        Ok(Predicate::new(PredId(idx as u16), left, op, right))
    }

    fn expect_tok(&mut self, tok: &Token, msg: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(StemsError::Parse(format!("{msg}, found {:?}", self.peek())))
        }
    }

    fn take_uint(&mut self, what: &str) -> Result<u64> {
        match self.peek() {
            Some(Token::Int(v)) if *v >= 0 => {
                let v = *v as u64;
                self.pos += 1;
                Ok(v)
            }
            other => Err(StemsError::Parse(format!(
                "{what} must be a non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_const(&mut self) -> Result<Value> {
        let v = match self.peek() {
            Some(Token::Int(v)) => Value::Int(*v),
            Some(Token::Float(v)) => Value::Float(*v),
            Some(Token::Str(s)) => Value::str(s),
            other => {
                return Err(StemsError::Parse(format!(
                    "expected constant in IN list, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        Ok(v)
    }

    fn parse_operand(&mut self, tables: &[TableInstance], catalog: &Catalog) -> Result<Operand> {
        match self.peek() {
            Some(Token::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Operand::Const(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Operand::Const(Value::Float(v)))
            }
            Some(Token::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Operand::Const(Value::str(&s)))
            }
            Some(Token::Ident(_)) => {
                let raw = self.parse_rawcol()?;
                Ok(Operand::Col(resolve_col(&raw, tables, catalog)?))
            }
            other => Err(StemsError::Parse(format!(
                "expected operand, found {other:?}"
            ))),
        }
    }
}

/// Resolve `[alias.]col`: with an alias, look it up; without, the column
/// name must be unambiguous across the FROM list.
fn resolve_col(raw: &RawCol, tables: &[TableInstance], catalog: &Catalog) -> Result<ColRef> {
    match &raw.alias {
        Some(alias) => {
            let idx = tables
                .iter()
                .position(|t| t.alias.eq_ignore_ascii_case(alias))
                .ok_or_else(|| StemsError::UnknownName(format!("alias `{alias}`")))?;
            let schema = &catalog.table_expect(tables[idx].source).schema;
            let col = schema
                .col_index(&raw.col)
                .ok_or_else(|| StemsError::UnknownName(format!("column `{alias}.{}`", raw.col)))?;
            Ok(ColRef::new(TableIdx(idx as u8), col))
        }
        None => {
            let mut hits = Vec::new();
            for (i, ti) in tables.iter().enumerate() {
                let schema = &catalog.table_expect(ti.source).schema;
                if let Some(col) = schema.col_index(&raw.col) {
                    hits.push(ColRef::new(TableIdx(i as u8), col));
                }
            }
            match hits.len() {
                0 => Err(StemsError::UnknownName(format!("column `{}`", raw.col))),
                1 => Ok(hits[0]),
                _ => Err(StemsError::Parse(format!(
                    "ambiguous column `{}` — qualify it with an alias",
                    raw.col
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{ScanSpec, TableDef};
    use stems_types::{ColumnType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        c
    }

    #[test]
    fn basic_join_query() {
        let c = catalog();
        let q = parse_query(&c, "SELECT * FROM R, S WHERE R.a = S.x").unwrap();
        assert_eq!(q.n_tables(), 2);
        assert_eq!(q.predicates.len(), 1);
        assert!(q.predicates[0].is_join());
        assert!(q.projection.is_none());
    }

    #[test]
    fn aliases_and_self_join() {
        let c = catalog();
        let q = parse_query(
            &c,
            "SELECT r1.key, r2.key FROM R r1, R AS r2 WHERE r1.a = r2.a",
        )
        .unwrap();
        assert_eq!(q.n_tables(), 2);
        assert_eq!(q.tables[0].source, q.tables[1].source);
        assert_eq!(q.projection.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn unambiguous_bare_columns_resolve() {
        let c = catalog();
        let q = parse_query(&c, "SELECT key FROM R, S WHERE a = x AND y > 5").unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(
            q.projection.as_ref().unwrap()[0],
            ColRef::new(TableIdx(0), 0)
        );
    }

    #[test]
    fn constants_and_operators() {
        let c = catalog();
        let q = parse_query(
            &c,
            "SELECT * FROM R WHERE R.a >= -3 AND R.key <> 7 AND R.a < 2.5",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert!(q.predicates.iter().all(|p| p.is_selection()));
        assert_eq!(q.predicates[0].op, CmpOp::Ge);
        assert_eq!(q.predicates[1].op, CmpOp::Ne);
    }

    #[test]
    fn string_literal_predicates() {
        let mut c = Catalog::new();
        let t = c
            .add_table(TableDef::new(
                "people",
                Schema::of(&[("name", ColumnType::Str)]),
            ))
            .unwrap();
        c.add_scan(t, ScanSpec::default()).unwrap();
        let q = parse_query(&c, "SELECT * FROM people WHERE name = 'O''Brien'").unwrap();
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn in_list_predicates() {
        let c = catalog();
        let q = parse_query(&c, "SELECT * FROM R WHERE R.a IN (1, -2, 3)").unwrap();
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].op, CmpOp::In);
        match &q.predicates[0].right {
            Operand::List(items) => {
                assert_eq!(items, &vec![Value::Int(1), Value::Int(-2), Value::Int(3)])
            }
            other => panic!("expected list, got {other:?}"),
        }
        // Case-insensitive keyword, mixed constant types, single member.
        let q = parse_query(&c, "select * from R where a in (1.5, 'x')").unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::In);
        let q = parse_query(&c, "SELECT * FROM R, S WHERE R.a = S.x AND S.y IN (7)").unwrap();
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn in_list_errors() {
        let c = catalog();
        // Empty list, unterminated list, non-column left, column member.
        assert!(parse_query(&c, "SELECT * FROM R WHERE R.a IN ()").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE R.a IN (1, 2").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE 1 IN (1, 2)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE R.a IN (R.key)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE R.a IN 1").is_err());
    }

    #[test]
    fn sieve_udf_predicates() {
        use stems_types::ExprKind;
        let c = catalog();
        let q = parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.a, 250, 1500)").unwrap();
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(
            q.predicates[0].kind,
            ExprKind::Udf(UdfSpec::hash_sieve(250, 1500))
        );
        assert_eq!(
            q.predicates[0].udf_input_col(),
            Some(ColRef::new(TableIdx(0), 1))
        );
        // Case-insensitive, bare column, composed with other predicates.
        let q = parse_query(
            &c,
            "select * from R, S where R.a = S.x and sieve(y, 1000, 1)",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert!(q.predicates[1].udf_spec().is_some());
        // A column actually named `sieve` still parses as a comparison
        // when not followed by `(`.
        let mut c2 = Catalog::new();
        let t = c2
            .add_table(TableDef::new(
                "T",
                Schema::of(&[("sieve", ColumnType::Int)]),
            ))
            .unwrap();
        c2.add_scan(t, ScanSpec::default()).unwrap();
        let q = parse_query(&c2, "SELECT * FROM T WHERE sieve > 3").unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
        assert!(q.predicates[0].udf_spec().is_none());
    }

    #[test]
    fn sieve_udf_errors() {
        let c = catalog();
        // Selectivity over 1000, negative arguments, malformed calls.
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.a, 1001, 5)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.a, -1, 5)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.a, 10, -5)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.a, 10)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.a, 10, 5").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(1, 10, 5)").is_err());
        assert!(parse_query(&c, "SELECT * FROM R WHERE SIEVE(R.zzz, 10, 5)").is_err());
    }

    #[test]
    fn errors() {
        let c = catalog();
        // unknown table
        assert!(parse_query(&c, "SELECT * FROM nope").is_err());
        // unknown column
        assert!(parse_query(&c, "SELECT * FROM R WHERE R.zzz = 1").is_err());
        // ambiguous bare column (both R.a? no — `x` only in S; use a col in
        // neither… actually `key` is only in R; make one ambiguous by
        // self-join)
        assert!(parse_query(&c, "SELECT * FROM R r1, R r2 WHERE a = 1").is_err());
        // const-const predicate
        assert!(parse_query(&c, "SELECT * FROM R WHERE 1 = 1").is_err());
        // trailing junk
        assert!(parse_query(&c, "SELECT * FROM R extra , nonsense").is_err());
        // missing FROM
        assert!(parse_query(&c, "SELECT *").is_err());
        // bad operator position
        assert!(parse_query(&c, "SELECT * FROM R WHERE R.a =").is_err());
    }

    #[test]
    fn case_insensitive_keywords_and_names() {
        let c = catalog();
        let q = parse_query(&c, "select * from r where r.A > 1").unwrap();
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn duplicate_alias_rejected_via_queryspec() {
        let c = catalog();
        assert!(parse_query(&c, "SELECT * FROM R t, S t").is_err());
    }
}
