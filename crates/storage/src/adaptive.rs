//! List→hash adaptive store.

use crate::flat::CandidateBuf;
use crate::store::DictStore;
use crate::{HashStore, ListStore};
use std::sync::Arc;
use stems_types::{HashedKey, Row, Value};

/// A store that starts as a [`ListStore`] and silently converts itself to a
/// [`HashStore`] once it crosses a size threshold.
///
/// This is the paper's example of adaptation *inside* a SteM, invisible to
/// the eddy (§3.1): "the SteM may use a linked list when it holds a small
/// number of tuples, and switch to a hash-based implementation when the
/// list size increases. This switch can be made independent of other
/// modules."
#[derive(Debug)]
pub struct AdaptiveStore {
    inner: Inner,
    indexed_cols: Vec<usize>,
    threshold: usize,
    /// How many times the store upgraded (0 or 1; exposed for experiments).
    pub upgrades: u32,
}

#[derive(Debug)]
enum Inner {
    List(ListStore),
    Hash(HashStore),
}

impl AdaptiveStore {
    pub fn new(indexed_cols: &[usize], threshold: usize) -> AdaptiveStore {
        AdaptiveStore {
            inner: Inner::List(ListStore::new()),
            indexed_cols: indexed_cols.to_vec(),
            threshold,
            upgrades: 0,
        }
    }

    fn maybe_upgrade(&mut self) {
        let should = matches!(&self.inner, Inner::List(l) if l.len() > self.threshold);
        if should {
            if let Inner::List(list) = &mut self.inner {
                let rows = list.take_rows();
                let mut hash = HashStore::new(&self.indexed_cols);
                for r in rows {
                    hash.insert(r);
                }
                self.inner = Inner::Hash(hash);
                self.upgrades += 1;
            }
        }
    }

    fn as_dyn(&self) -> &dyn DictStore {
        match &self.inner {
            Inner::List(l) => l,
            Inner::Hash(h) => h,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn DictStore {
        match &mut self.inner {
            Inner::List(l) => l,
            Inner::Hash(h) => h,
        }
    }
}

impl DictStore for AdaptiveStore {
    fn insert(&mut self, row: Arc<Row>) {
        self.as_dyn_mut().insert(row);
        self.maybe_upgrade();
    }

    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>> {
        self.as_dyn().lookup_eq(col, key)
    }

    fn lookup_eq_flat(&self, col: usize, keys: &[HashedKey], out: &mut CandidateBuf) {
        // Delegate so the hash-backed phase keeps its prehashed index
        // descent (the default would loop scalar lookups).
        self.as_dyn().lookup_eq_flat(col, keys, out)
    }

    fn scan(&self) -> Vec<Arc<Row>> {
        self.as_dyn().scan()
    }

    fn remove(&mut self, row: &Row) -> bool {
        self.as_dyn_mut().remove(row)
    }

    fn oldest(&self) -> Option<Arc<Row>> {
        self.as_dyn().oldest()
    }

    fn len(&self) -> usize {
        self.as_dyn().len()
    }

    fn approx_bytes(&self) -> usize {
        self.as_dyn().approx_bytes()
    }

    fn backend(&self) -> &'static str {
        self.as_dyn().backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance::{self, row};

    #[test]
    fn conformance_suite_small_threshold() {
        // Upgrades mid-suite; behaviour must be indistinguishable.
        conformance::run_suite(Box::new(AdaptiveStore::new(&[1], 2)));
    }

    #[test]
    fn conformance_suite_large_threshold() {
        // Never upgrades; stays a list throughout.
        conformance::run_suite(Box::new(AdaptiveStore::new(&[1], 1_000)));
    }

    #[test]
    fn upgrade_happens_exactly_once_at_threshold() {
        let mut s = AdaptiveStore::new(&[0], 3);
        for i in 0..3 {
            s.insert(row(&[i]));
        }
        assert_eq!(s.backend(), "list");
        assert_eq!(s.upgrades, 0);
        s.insert(row(&[3]));
        assert_eq!(s.backend(), "hash");
        assert_eq!(s.upgrades, 1);
        for i in 4..10 {
            s.insert(row(&[i]));
        }
        assert_eq!(s.upgrades, 1);
        // Data survived the upgrade.
        assert_eq!(s.len(), 10);
        for i in 0..10 {
            assert_eq!(s.lookup_eq(0, &Value::Int(i)).len(), 1, "key {i}");
        }
    }

    #[test]
    fn scan_order_preserved_across_upgrade() {
        let mut s = AdaptiveStore::new(&[0], 1);
        s.insert(row(&[10]));
        s.insert(row(&[11]));
        s.insert(row(&[12]));
        let keys: Vec<_> = s
            .scan()
            .iter()
            .map(|r| r.get(0).cloned().unwrap())
            .collect();
        assert_eq!(keys, vec![Value::Int(10), Value::Int(11), Value::Int(12)]);
    }
}
