//! Dictionary stores backing State Modules.
//!
//! A SteM "encapsulates a dictionary data structure over tuples from a
//! table, and handles build (insert) and probe (lookup) requests on that
//! dictionary" (paper §1). The paper stresses that *which* dictionary a
//! SteM uses is an implementation choice the SteM may even adapt on its own
//! (§3.1: "the SteM may use a linked list when it holds a small number of
//! tuples, and switch to a hash-based implementation when the list size
//! increases"), and that different dictionary implementations make routing
//! simulate different classical join algorithms:
//!
//! * hash indexes ⇒ (n-ary) symmetric hash join,
//! * partitioned "asynchronous" stores ⇒ Grace / hybrid-hash joins,
//! * sorted runs (tournament trees) ⇒ sort-merge join.
//!
//! This crate provides those stores behind one trait, [`DictStore`]:
//!
//! * [`ListStore`] — append-only vector, lookups by filtered scan.
//! * [`HashStore`] — secondary hash indexes on each join column, "pointers
//!   to the same tuples in memory" (paper §2.1.4) via shared [`Arc<Row>`]s.
//! * [`AdaptiveStore`] — starts as a list, switches to hash at a threshold.
//! * [`PartitionedStore`] — Grace-style hash partitions with clustered
//!   draining, used to delay and batch bounce-backs.
//! * [`SortedStore`] — per-column sorted runs for merge-style access.
//!
//! Plus [`RowSet`], the set-semantics duplicate filter of §3.2, a small
//! in-repo Fx-style hasher ([`fxhash`]) for hot integer keys, and the flat
//! probe machinery: [`CandidateBuf`] (the caller-owned arena behind
//! [`DictStore::lookup_eq_flat`], with key-run dedup) and [`PrehashedMap`]
//! (hash-once secondary indexes that never re-hash a probe key).
//!
//! [`Arc<Row>`]: stems_types::Row

pub mod fxhash;

mod adaptive;
mod dedup;
mod flat;
mod hash;
mod list;
mod partitioned;
mod prehash;
mod sorted;
mod store;

pub use adaptive::AdaptiveStore;
pub use dedup::RowSet;
pub use flat::CandidateBuf;
pub use hash::HashStore;
pub use list::ListStore;
pub use partitioned::PartitionedStore;
pub use prehash::PrehashedMap;
pub use sorted::SortedStore;
pub use store::{index_key, DictStore, StoreKind};
