//! Grace-style partitioned store.

use crate::fxhash::FxBuildHasher;
use crate::store::{index_key, DictStore};
use std::hash::BuildHasher;
use std::sync::Arc;
use stems_types::{Row, Value};

/// A dictionary hash-partitioned on one column, with a configurable number
/// of memory-resident partitions.
///
/// This backs the paper's §3.1 observation that the *SteM implementation*
/// chooses which classical algorithm a routing simulates: "the following
/// 'asynchronous' hash index implementation simulates a Grace Hash Join ...
/// the SteMs create hash partitions on disk. But instead of bouncing back
/// these build tuples immediately, they do so asynchronously, clustered by
/// the hash partition." Keeping a prefix of partitions in memory and
/// releasing their tuples first yields Hybrid-Hash (DeWitt et al.).
///
/// The partition structure lives here; the *timing* of clustered
/// bounce-backs is engine behaviour (see `stems-core`'s SteM options).
/// Spilled partitions answer lookups too — the store is logically complete;
/// the simulation charges extra latency for spilled access.
#[derive(Debug)]
pub struct PartitionedStore {
    part_col: usize,
    /// Rows in arrival order (the `DictStore::scan`/`oldest` contract);
    /// partition-major order is available via [`PartitionedStore::partition_rows`].
    arrival: Vec<Arc<Row>>,
    partitions: Vec<Vec<Arc<Row>>>,
    /// Rows whose partition key is un-indexable (NULL/EOT or a missing
    /// column). They used to land in partition 0 and skew its residency
    /// and spill accounting; the overflow lane keeps every partition's
    /// stats equal to its real key population. Overflow rows match
    /// nothing on the partition column but stay visible to scans and to
    /// lookups on other columns.
    overflow: Vec<Arc<Row>>,
    /// Partitions `< mem_resident` are "in memory"; the rest are "spilled".
    mem_resident: usize,
    hasher: FxBuildHasher,
    len: usize,
    bytes: usize,
}

impl PartitionedStore {
    /// `part_col`: the column to partition on (the equi-join column).
    /// `num_partitions`: Grace fan-out. `mem_resident`: how many partitions
    /// stay memory-resident (0 = pure Grace, all = plain hash join).
    pub fn new(part_col: usize, num_partitions: usize, mem_resident: usize) -> PartitionedStore {
        assert!(num_partitions > 0, "need at least one partition");
        PartitionedStore {
            part_col,
            arrival: Vec::new(),
            partitions: (0..num_partitions).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            mem_resident: mem_resident.min(num_partitions),
            hasher: FxBuildHasher::default(),
            len: 0,
            bytes: 0,
        }
    }

    /// The partition a key belongs to. `None` for un-indexable keys
    /// (NULL/EOT), which go to the overflow lane on insert and match
    /// nothing on the partition column.
    pub fn partition_of(&self, key: &Value) -> Option<usize> {
        index_key(key).map(|k| (self.hasher.hash_one(&k) % self.partitions.len() as u64) as usize)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Is partition `i` memory-resident?
    pub fn is_mem_resident(&self, i: usize) -> bool {
        i < self.mem_resident
    }

    /// Rows of partition `i` in insertion order.
    pub fn partition_rows(&self, i: usize) -> &[Arc<Row>] {
        &self.partitions[i]
    }

    /// Rows whose partition key is un-indexable, in insertion order.
    pub fn overflow_rows(&self) -> &[Arc<Row>] {
        &self.overflow
    }

    /// The lane a row belongs to: a real partition, or the overflow lane.
    fn slot_for(&self, row: &Row) -> Option<usize> {
        row.get(self.part_col).and_then(|v| self.partition_of(v))
    }

    fn lane_mut(&mut self, row: &Row) -> &mut Vec<Arc<Row>> {
        match self.slot_for(row) {
            Some(slot) => &mut self.partitions[slot],
            None => &mut self.overflow,
        }
    }
}

impl DictStore for PartitionedStore {
    fn insert(&mut self, row: Arc<Row>) {
        self.bytes += row.approx_bytes();
        self.arrival.push(row.clone());
        self.lane_mut(&row).push(row);
        self.len += 1;
    }

    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>> {
        let Some(k) = index_key(key) else {
            return Vec::new();
        };
        let candidates: Box<dyn Iterator<Item = &Arc<Row>>> = if col == self.part_col {
            // Overflow rows have no indexable partition key, so they can
            // never equal `k` — the partition alone is complete.
            match self.partition_of(key) {
                Some(p) => Box::new(self.partitions[p].iter()),
                None => return Vec::new(),
            }
        } else {
            // Other columns of an overflow row may be perfectly indexable:
            // the logical store is partitions ∪ overflow.
            Box::new(self.partitions.iter().flatten().chain(self.overflow.iter()))
        };
        candidates
            .filter(|r| r.get(col).and_then(index_key).is_some_and(|rk| rk == k))
            .cloned()
            .collect()
    }

    fn scan(&self) -> Vec<Arc<Row>> {
        self.arrival.clone()
    }

    fn remove(&mut self, row: &Row) -> bool {
        let lane = self.lane_mut(row);
        if let Some(pos) = lane.iter().position(|r| r.as_ref() == row) {
            let r = lane.remove(pos);
            if let Some(apos) = self.arrival.iter().position(|a| a.as_ref() == row) {
                self.arrival.remove(apos);
            }
            self.bytes = self.bytes.saturating_sub(r.approx_bytes());
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn oldest(&self) -> Option<Arc<Row>> {
        self.arrival.first().cloned()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn approx_bytes(&self) -> usize {
        self.bytes + std::mem::size_of::<PartitionedStore>()
    }

    fn backend(&self) -> &'static str {
        "partitioned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance::row;

    #[test]
    fn rows_land_in_consistent_partitions() {
        let s = {
            let mut s = PartitionedStore::new(0, 4, 0);
            for i in 0..100 {
                s.insert(row(&[i, i * 2]));
            }
            s
        };
        assert_eq!(s.len(), 100);
        let total: usize = (0..4).map(|i| s.partition_rows(i).len()).sum();
        assert_eq!(total, 100);
        // Each key must be findable through its partition.
        for i in 0..100 {
            let hits = s.lookup_eq(0, &Value::Int(i));
            assert_eq!(hits.len(), 1, "key {i}");
        }
    }

    #[test]
    fn lookup_on_non_partition_column_scans_all() {
        let mut s = PartitionedStore::new(0, 4, 0);
        s.insert(row(&[1, 7]));
        s.insert(row(&[2, 7]));
        assert_eq!(s.lookup_eq(1, &Value::Int(7)).len(), 2);
    }

    #[test]
    fn mem_residency_prefix() {
        let s = PartitionedStore::new(0, 4, 2);
        assert!(s.is_mem_resident(0));
        assert!(s.is_mem_resident(1));
        assert!(!s.is_mem_resident(2));
        let all_mem = PartitionedStore::new(0, 3, 9);
        assert!(all_mem.is_mem_resident(2));
    }

    #[test]
    fn null_keys_match_nothing() {
        let mut s = PartitionedStore::new(0, 2, 0);
        s.insert(Arc::new(Row::new(vec![Value::Null])));
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup_eq(0, &Value::Null).len(), 0);
    }

    #[test]
    fn unindexable_keys_take_overflow_lane_not_partition_zero() {
        // Partition 0's stats must reflect its real key population: rows
        // with NULL/EOT partition keys go to the overflow lane.
        let mut s = PartitionedStore::new(0, 4, 1);
        for i in 0..20 {
            s.insert(row(&[i, i]));
        }
        let real_p0 = s.partition_rows(0).len();
        s.insert(Arc::new(Row::new(vec![Value::Null, Value::Int(7)])));
        s.insert(Arc::new(Row::new(vec![Value::Eot, Value::Int(7)])));
        assert_eq!(s.len(), 22);
        assert_eq!(
            s.partition_rows(0).len(),
            real_p0,
            "partition 0 must not absorb un-indexable keys"
        );
        assert_eq!(s.overflow_rows().len(), 2);
        let keyed: usize = (0..4).map(|i| s.partition_rows(i).len()).sum();
        assert_eq!(keyed, 20, "partition stats count exactly the keyed rows");
        assert_eq!(s.scan().len(), 22);
    }

    #[test]
    fn overflow_rows_visible_to_other_column_lookups() {
        let mut s = PartitionedStore::new(0, 2, 0);
        s.insert(row(&[1, 7]));
        s.insert(Arc::new(Row::new(vec![Value::Null, Value::Int(7)])));
        // The NULL-keyed row still answers lookups on column 1 …
        assert_eq!(s.lookup_eq(1, &Value::Int(7)).len(), 2);
        // … and never pollutes partition-column lookups.
        assert_eq!(s.lookup_eq(0, &Value::Int(1)).len(), 1);
    }

    #[test]
    fn overflow_rows_removable() {
        let mut s = PartitionedStore::new(0, 2, 0);
        let null_row = Arc::new(Row::new(vec![Value::Null, Value::Int(7)]));
        s.insert(null_row.clone());
        s.insert(row(&[1, 2]));
        assert!(s.remove(&null_row));
        assert!(!s.remove(&null_row));
        assert_eq!(s.len(), 1);
        assert!(s.overflow_rows().is_empty());
        assert_eq!(s.scan().len(), 1);
    }

    #[test]
    fn remove_and_scan() {
        let mut s = PartitionedStore::new(0, 2, 0);
        s.insert(row(&[1]));
        s.insert(row(&[2]));
        assert!(s.remove(&row(&[1])));
        assert!(!s.remove(&row(&[1])));
        assert_eq!(s.len(), 1);
        assert_eq!(s.scan().len(), 1);
        assert!(s.oldest().is_some());
    }
}
