//! Sorted store for merge-style and range access.

use crate::store::{index_key, DictStore};
use std::cmp::Ordering;
use std::sync::Arc;
use stems_types::{CmpOp, Row, Value};

/// A dictionary kept sorted on one column.
///
/// Stands in for the paper's "tournament trees that spill sorted runs to
/// disk" (§3.1, the sort-merge-join simulation). Beyond equality probes it
/// supports range lookups, which SteMs use for non-equi join predicates
/// (`<`, `<=`, `>`, `>=`) instead of full scans.
#[derive(Debug)]
pub struct SortedStore {
    sort_col: usize,
    /// Rows sorted by `index_key(row[sort_col])` under `Value::total_cmp`;
    /// rows with un-indexable keys (NULL/EOT) are kept separately.
    rows: Vec<(Value, Arc<Row>)>,
    unkeyed: Vec<Arc<Row>>,
    /// Insertion sequence per row, to reconstruct arrival order for `scan`.
    arrival: Vec<Arc<Row>>,
    bytes: usize,
}

impl SortedStore {
    pub fn new(sort_col: usize) -> SortedStore {
        SortedStore {
            sort_col,
            rows: Vec::new(),
            unkeyed: Vec::new(),
            arrival: Vec::new(),
            bytes: 0,
        }
    }

    /// All rows in sort order (the "merge" cursor).
    pub fn sorted(&self) -> impl Iterator<Item = &Arc<Row>> {
        self.rows.iter().map(|(_, r)| r)
    }

    fn lower_bound(&self, key: &Value) -> usize {
        self.rows
            .partition_point(|(k, _)| k.total_cmp(key) == Ordering::Less)
    }

    /// Rows whose sort-column value satisfies `row[col] op key`.
    /// Equality uses binary search; inequalities use a split point.
    pub fn lookup_range(&self, op: CmpOp, key: &Value) -> Vec<Arc<Row>> {
        let Some(k) = index_key(key) else {
            return Vec::new();
        };
        let lb = self.lower_bound(&k);
        let ub = self
            .rows
            .partition_point(|(rk, _)| rk.total_cmp(&k) != Ordering::Greater);
        let idx: Box<dyn Iterator<Item = usize>> = match op {
            // Membership against the single scalar `key` is equality.
            CmpOp::Eq | CmpOp::In => Box::new(lb..ub),
            CmpOp::Lt => Box::new(0..lb),
            CmpOp::Le => Box::new(0..ub),
            CmpOp::Gt => Box::new(ub..self.rows.len()),
            CmpOp::Ge => Box::new(lb..self.rows.len()),
            CmpOp::Ne => Box::new((0..lb).chain(ub..self.rows.len())),
        };
        idx.map(|i| self.rows[i].1.clone()).collect()
    }
}

impl DictStore for SortedStore {
    fn insert(&mut self, row: Arc<Row>) {
        self.bytes += row.approx_bytes();
        self.arrival.push(row.clone());
        match row.get(self.sort_col).and_then(index_key) {
            Some(k) => {
                let pos = self
                    .rows
                    .partition_point(|(rk, _)| rk.total_cmp(&k) != Ordering::Greater);
                self.rows.insert(pos, (k, row));
            }
            None => self.unkeyed.push(row),
        }
    }

    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>> {
        if col == self.sort_col {
            self.lookup_range(CmpOp::Eq, key)
        } else {
            let Some(k) = index_key(key) else {
                return Vec::new();
            };
            self.arrival
                .iter()
                .filter(|r| r.get(col).and_then(index_key).is_some_and(|rk| rk == k))
                .cloned()
                .collect()
        }
    }

    fn scan(&self) -> Vec<Arc<Row>> {
        self.arrival.clone()
    }

    fn remove(&mut self, row: &Row) -> bool {
        let Some(apos) = self.arrival.iter().position(|r| r.as_ref() == row) else {
            return false;
        };
        let removed = self.arrival.remove(apos);
        self.bytes = self.bytes.saturating_sub(removed.approx_bytes());
        if let Some(pos) = self.rows.iter().position(|(_, r)| r.as_ref() == row) {
            self.rows.remove(pos);
        } else if let Some(pos) = self.unkeyed.iter().position(|r| r.as_ref() == row) {
            self.unkeyed.remove(pos);
        }
        true
    }

    fn oldest(&self) -> Option<Arc<Row>> {
        self.arrival.first().cloned()
    }

    fn len(&self) -> usize {
        self.arrival.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes + std::mem::size_of::<SortedStore>()
    }

    fn backend(&self) -> &'static str {
        "sorted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance::{self, row};

    #[test]
    fn conformance_on_sort_column() {
        conformance::run_suite(Box::new(SortedStore::new(1)));
    }

    #[test]
    fn conformance_off_sort_column() {
        conformance::run_suite(Box::new(SortedStore::new(0)));
    }

    #[test]
    fn sorted_iteration_order() {
        let mut s = SortedStore::new(0);
        for k in [5, 1, 9, 3, 7] {
            s.insert(row(&[k]));
        }
        let keys: Vec<i64> = s
            .sorted()
            .map(|r| match r.get(0) {
                Some(Value::Int(i)) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn range_lookups() {
        let mut s = SortedStore::new(0);
        for k in 0..10 {
            s.insert(row(&[k]));
        }
        assert_eq!(s.lookup_range(CmpOp::Lt, &Value::Int(3)).len(), 3);
        assert_eq!(s.lookup_range(CmpOp::Le, &Value::Int(3)).len(), 4);
        assert_eq!(s.lookup_range(CmpOp::Gt, &Value::Int(7)).len(), 2);
        assert_eq!(s.lookup_range(CmpOp::Ge, &Value::Int(7)).len(), 3);
        assert_eq!(s.lookup_range(CmpOp::Eq, &Value::Int(5)).len(), 1);
        assert_eq!(s.lookup_range(CmpOp::Ne, &Value::Int(5)).len(), 9);
    }

    #[test]
    fn duplicate_sort_keys_all_found() {
        let mut s = SortedStore::new(0);
        s.insert(row(&[4, 1]));
        s.insert(row(&[4, 2]));
        s.insert(row(&[4, 3]));
        assert_eq!(s.lookup_range(CmpOp::Eq, &Value::Int(4)).len(), 3);
        assert_eq!(s.lookup_range(CmpOp::Lt, &Value::Int(4)).len(), 0);
        assert_eq!(s.lookup_range(CmpOp::Gt, &Value::Int(4)).len(), 0);
    }

    #[test]
    fn scan_keeps_arrival_order_despite_sorting() {
        let mut s = SortedStore::new(0);
        s.insert(row(&[9]));
        s.insert(row(&[1]));
        let arrived: Vec<_> = s
            .scan()
            .iter()
            .map(|r| r.get(0).cloned().unwrap())
            .collect();
        assert_eq!(arrived, vec![Value::Int(9), Value::Int(1)]);
    }
}
