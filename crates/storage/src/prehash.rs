//! A value dictionary keyed by *precomputed* equality hashes.
//!
//! [`crate::HashStore`]'s secondary indexes used to be
//! `FxHashMap<Value, _>`: every probe re-hashed its key — cheap for an
//! `Int`, real work for a `Str` or `Float`, and pure waste once the flat
//! probe pipeline computes [`stems_types::Value::stable_key_hash`] exactly
//! once at the envelope boundary. [`PrehashedMap`] accepts that hash
//! alongside the key, so index descent is a bucket jump plus an equality
//! check, never a re-hash.
//!
//! Hash collisions are handled by a per-bucket chain of `(Value, V)`
//! entries compared by dictionary equality; chains are almost always one
//! entry long. Keys must be equality-normalized
//! ([`stems_types::Value::equality_key`]) before insertion — `Int(5)` and
//! `Float(5.0)` are the *same* key here, which is what keeps index
//! lookups complete under SQL numeric coercion.

use std::hash::{BuildHasherDefault, Hasher};
use stems_types::{KeyHash, Value};

/// A no-op hasher: the map's u64 keys *are* the hashes. Feeding anything
/// but a single u64 is a logic error.
#[derive(Debug, Clone, Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only accepts u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

/// `BuildHasher` for [`IdentityHasher`].
pub type BuildIdentityHasher = BuildHasherDefault<IdentityHasher>;

/// A map from equality-normalized [`Value`] keys to `V`, with every hash
/// supplied by the caller (see module docs).
#[derive(Debug, Clone)]
pub struct PrehashedMap<V> {
    buckets: std::collections::HashMap<u64, Vec<(Value, V)>, BuildIdentityHasher>,
    len: usize,
}

impl<V> Default for PrehashedMap<V> {
    fn default() -> Self {
        PrehashedMap {
            buckets: Default::default(),
            len: 0,
        }
    }
}

impl<V> PrehashedMap<V> {
    pub fn new() -> PrehashedMap<V> {
        PrehashedMap::default()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up `key` under its precomputed `hash` — no re-hashing.
    pub fn get(&self, hash: KeyHash, key: &Value) -> Option<&V> {
        self.buckets
            .get(&hash.get())?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, hash: KeyHash, key: &Value) -> Option<&mut V> {
        self.buckets
            .get_mut(&hash.get())?
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The entry for `key`, default-created on first use; `key` is cloned
    /// only on a miss.
    pub fn get_or_insert_default(&mut self, hash: KeyHash, key: &Value) -> &mut V
    where
        V: Default,
    {
        let bucket = self.buckets.entry(hash.get()).or_default();
        match bucket.iter().position(|(k, _)| k == key) {
            Some(i) => &mut bucket[i].1,
            None => {
                self.len += 1;
                bucket.push((key.clone(), V::default()));
                &mut bucket.last_mut().expect("just pushed").1
            }
        }
    }

    /// Remove `key`'s entry, returning its value.
    pub fn remove(&mut self, hash: KeyHash, key: &Value) -> Option<V> {
        let bucket = self.buckets.get_mut(&hash.get())?;
        let i = bucket.iter().position(|(k, _)| k == key)?;
        let (_, v) = bucket.remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&hash.get());
        }
        self.len -= 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hk(v: &Value) -> KeyHash {
        KeyHash(v.stable_key_hash().expect("hashable test key"))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PrehashedMap<Vec<usize>> = PrehashedMap::new();
        assert!(m.is_empty());
        let k = Value::str("abc");
        m.get_or_insert_default(hk(&k), &k).push(7);
        m.get_or_insert_default(hk(&k), &k).push(9);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(hk(&k), &k), Some(&vec![7, 9]));
        assert_eq!(m.get(hk(&Value::Int(1)), &Value::Int(1)), None);
        m.get_mut(hk(&k), &k).unwrap().retain(|p| *p != 7);
        assert_eq!(m.get(hk(&k), &k), Some(&vec![9]));
        assert_eq!(m.remove(hk(&k), &k), Some(vec![9]));
        assert!(m.is_empty());
        assert_eq!(m.remove(hk(&k), &k), None);
    }

    #[test]
    fn forced_hash_collisions_resolve_by_value() {
        // Two distinct keys rammed into one bucket with an identical
        // (caller-supplied) hash: the chain must keep them apart. This is
        // the adversarial case a real stable_key_hash collision would hit.
        let mut m: PrehashedMap<i64> = PrehashedMap::new();
        let fake = KeyHash(0xDEAD_BEEF);
        let (a, b) = (Value::Int(1), Value::str("one"));
        *m.get_or_insert_default(fake, &a) = 10;
        *m.get_or_insert_default(fake, &b) = 20;
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(fake, &a), Some(&10));
        assert_eq!(m.get(fake, &b), Some(&20));
        assert_eq!(m.remove(fake, &a), Some(10));
        assert_eq!(m.get(fake, &b), Some(&20), "chain sibling must survive");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn same_key_under_two_hashes_is_two_entries() {
        // The map trusts the caller's hash: it never re-hashes, so a
        // wrong hash simply misses. Documents the contract rather than a
        // desirable behavior.
        let mut m: PrehashedMap<i64> = PrehashedMap::new();
        let k = Value::Int(5);
        *m.get_or_insert_default(KeyHash(1), &k) = 1;
        assert_eq!(m.get(KeyHash(2), &k), None);
    }
}
