//! The dictionary-store abstraction shared by all SteM backends.

use crate::flat::CandidateBuf;
use crate::{AdaptiveStore, HashStore, ListStore, PartitionedStore, SortedStore};
use std::sync::Arc;
use stems_types::{HashedKey, Row, Value};

/// Normalize a value for use as an equality-index key.
///
/// Returns `None` for values that can never satisfy an SQL equality
/// predicate (`NULL`, the EOT marker) — such rows are stored but excluded
/// from secondary indexes. Integral floats normalize to `Int` so that
/// `R.a = S.x` with mixed `Int`/`Float` columns still finds every match an
/// index-free scan would (index lookups must be *complete* w.r.t.
/// [`Value::sql_eq`]; candidate rows are always re-verified by the caller).
///
/// Thin wrapper over [`Value::equality_key`] — the normal form whose
/// [`Value::stable_key_hash`] the hash-once probe pipeline precomputes.
pub fn index_key(v: &Value) -> Option<Value> {
    v.equality_key()
}

/// The trait-default [`DictStore::lookup_eq_flat`] body: key-run dedup
/// plus one scalar [`DictStore::lookup_eq`] per *distinct* key. A free
/// function so backend overrides (e.g. [`HashStore`] on an un-indexed
/// column) can fall back to it explicitly.
pub(crate) fn lookup_eq_flat_via_scalar(
    store: &(impl DictStore + ?Sized),
    col: usize,
    keys: &[HashedKey],
    out: &mut CandidateBuf,
) {
    out.reset();
    for (i, key) in keys.iter().enumerate() {
        if let Some(j) = out.probe_dup(i, keys) {
            out.share_key(j);
            continue;
        }
        let start = out.begin_key();
        for row in store.lookup_eq(col, key.raw()) {
            out.push_row(row);
        }
        out.commit_key(start);
    }
}

/// A dictionary of rows from one table, supporting the three SteM
/// operations of the paper: insert (build), search (probe) and optionally
/// delete (eviction).
///
/// `lookup_eq` implements the hot path — equality search on one column —
/// and must return **every** row whose column `col` is `sql_eq` to `key`
/// (it may return extra candidates; the SteM re-verifies predicates on the
/// concatenated tuple). Non-equality predicates go through `scan`.
pub trait DictStore: std::fmt::Debug {
    /// Insert a row. Duplicate handling is the caller's job ([`crate::RowSet`]).
    fn insert(&mut self, row: Arc<Row>);

    /// Insert a batch of rows. Backends override this when they can
    /// amortize work across the batch (e.g. one capacity reservation for
    /// the whole batch); the default loops over [`DictStore::insert`].
    fn insert_batch(&mut self, rows: Vec<Arc<Row>>) {
        for row in rows {
            self.insert(row);
        }
    }

    /// Rows matching `row[col] = key` (superset allowed, see trait docs).
    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>>;

    /// The flat batch-lookup hot path: one [`DictStore::lookup_eq`]-
    /// equivalent result per key, written into the caller-owned, reusable
    /// `out` arena (no per-key `Vec` allocations). Keys arrive with their
    /// equality hash precomputed ([`HashedKey`]); implementations must
    /// never re-hash them. The default performs key-run dedup (identical
    /// keys resolve once and share a candidate span — see
    /// [`CandidateBuf::probe_dup`]) around the scalar `lookup_eq`;
    /// index-backed stores override to also resolve the index once for
    /// the whole envelope and descend by the precomputed hashes.
    fn lookup_eq_flat(&self, col: usize, keys: &[HashedKey], out: &mut CandidateBuf) {
        lookup_eq_flat_via_scalar(self, col, keys, out);
    }

    /// One [`DictStore::lookup_eq`] result per key, in key order. A thin
    /// compatibility shim over [`DictStore::lookup_eq_flat`]; hot callers
    /// hold their own [`CandidateBuf`] and use the flat API directly.
    fn lookup_eq_batch(&self, col: usize, keys: &[Value]) -> Vec<Vec<Arc<Row>>> {
        let hashed: Vec<HashedKey> = keys.iter().cloned().map(HashedKey::new).collect();
        let mut buf = CandidateBuf::new();
        self.lookup_eq_flat(col, &hashed, &mut buf);
        (0..hashed.len())
            .map(|i| buf.candidates(i).to_vec())
            .collect()
    }

    /// All rows in insertion order.
    fn scan(&self) -> Vec<Arc<Row>>;

    /// Remove one row equal (by value) to `row`. Returns whether a row was
    /// removed. Used for eviction in windowed/continuous queries.
    fn remove(&mut self, row: &Row) -> bool;

    /// The oldest still-present row (insertion order), for FIFO eviction.
    fn oldest(&self) -> Option<Arc<Row>>;

    /// Number of rows.
    fn len(&self) -> usize;

    /// True if no rows are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint, for the memory-accounting series.
    fn approx_bytes(&self) -> usize;

    /// A short human-readable description of the backend currently in use
    /// ("list", "hash", ...), so experiments can log store adaptations.
    fn backend(&self) -> &'static str;
}

/// Factory describing which [`DictStore`] a SteM should use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Append-only list; lookups scan.
    List,
    /// Hash indexes on the given columns.
    #[default]
    Hash,
    /// List that converts itself to hash once it exceeds `threshold` rows
    /// (paper §3.1's example of SteM-internal adaptation).
    Adaptive { threshold: usize },
    /// Grace-style hash partitions on the first indexed column, with a
    /// memory-resident prefix (§3.1's "asynchronous hash index").
    Partitioned {
        partitions: usize,
        mem_resident: usize,
    },
    /// Kept sorted on the first indexed column ("tournament trees",
    /// §3.1's sort-merge simulation); range probes are cheap.
    Sorted,
}

impl StoreKind {
    /// Instantiate the store. `indexed_cols` lists the columns involved in
    /// equi-join predicates — the SteM builds "one main-memory index ... on
    /// each column ... involved in a join predicate" (paper §2.1.4).
    ///
    /// The trait object is `Send + Sync`: sharded SteMs probe their shard
    /// stores from scoped worker threads through `&self`, so every backend
    /// must be shareable (none uses interior mutability).
    pub fn build(&self, indexed_cols: &[usize]) -> Box<dyn DictStore + Send + Sync> {
        let primary_col = indexed_cols.first().copied().unwrap_or(0);
        match self {
            StoreKind::List => Box::new(ListStore::new()),
            StoreKind::Hash => Box::new(HashStore::new(indexed_cols)),
            StoreKind::Adaptive { threshold } => {
                Box::new(AdaptiveStore::new(indexed_cols, *threshold))
            }
            StoreKind::Partitioned {
                partitions,
                mem_resident,
            } => Box::new(PartitionedStore::new(
                primary_col,
                (*partitions).max(1),
                *mem_resident,
            )),
            StoreKind::Sorted => Box::new(SortedStore::new(primary_col)),
        }
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every store backend.

    use super::*;
    use stems_types::Value;

    pub fn row(vals: &[i64]) -> Arc<Row> {
        Row::shared(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    /// Insert a standard dataset and exercise every trait method.
    pub fn run_suite(mut store: Box<dyn DictStore + Send + Sync>) {
        assert!(store.is_empty());
        assert_eq!(store.oldest(), None);

        // rows: (key, a) with a in {10, 20}
        store.insert(row(&[1, 10]));
        store.insert(row(&[2, 20]));
        store.insert(row(&[3, 10]));
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        assert!(store.approx_bytes() > 0);

        // equality lookup on col 1
        let hits = store.lookup_eq(1, &Value::Int(10));
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|r| r.get(1) == Some(&Value::Int(10))));
        assert_eq!(store.lookup_eq(1, &Value::Int(99)).len(), 0);

        // NULL / EOT keys match nothing
        assert_eq!(store.lookup_eq(1, &Value::Null).len(), 0);
        assert_eq!(store.lookup_eq(1, &Value::Eot).len(), 0);

        // numeric coercion: Float(10.0) must find Int(10) rows
        assert_eq!(store.lookup_eq(1, &Value::Float(10.0)).len(), 2);

        // scan preserves insertion order
        let all = store.scan();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].get(0), Some(&Value::Int(1)));
        assert_eq!(all[2].get(0), Some(&Value::Int(3)));
        assert_eq!(store.oldest().unwrap().get(0), Some(&Value::Int(1)));

        // rows containing NULL in an indexed column are stored but never
        // returned by equality lookups
        store.insert(Row::shared(vec![Value::Int(4), Value::Null]));
        assert_eq!(store.len(), 4);
        assert_eq!(store.lookup_eq(1, &Value::Int(10)).len(), 2);
        assert_eq!(store.lookup_eq(1, &Value::Null).len(), 0);

        // removal
        assert!(store.remove(&row(&[1, 10])));
        assert!(!store.remove(&row(&[1, 10])));
        assert_eq!(store.len(), 3);
        assert_eq!(store.lookup_eq(1, &Value::Int(10)).len(), 1);
        assert_eq!(store.oldest().unwrap().get(0), Some(&Value::Int(2)));

        // duplicates are allowed at this layer (dedup is RowSet's job)
        store.insert(row(&[2, 20]));
        assert_eq!(store.len(), 4);
        assert_eq!(store.lookup_eq(1, &Value::Int(20)).len(), 2);
        // remove deletes one copy at a time
        assert!(store.remove(&row(&[2, 20])));
        assert_eq!(store.lookup_eq(1, &Value::Int(20)).len(), 1);

        // batch APIs must agree with the scalar path
        let before = store.len();
        store.insert_batch(vec![row(&[7, 30]), row(&[8, 30])]);
        assert_eq!(store.len(), before + 2);
        let hits = store.lookup_eq_batch(1, &[Value::Int(30), Value::Int(99), Value::Null]);
        assert_eq!(hits[0].len(), 2);
        assert!(hits[1].is_empty() && hits[2].is_empty());

        // flat batch API: agreement with scalar lookup_eq on every key,
        // for both indexed-path and scan-filter columns
        for col in [0, 1] {
            assert_flat_matches_scalar(
                store.as_ref(),
                col,
                &[
                    // duplicate-heavy run: dedup must not change results
                    Value::Int(30),
                    Value::Int(30),
                    Value::Float(30.0), // coercion duplicate of Int(30)
                    Value::Int(99),
                    Value::Null, // un-hashable keys share an empty span
                    Value::Eot,
                    Value::Null,
                    Value::Int(20),
                    Value::Int(30),
                ],
            );
        }
        // empty-key envelope: a no-op, not a panic
        assert_flat_matches_scalar(store.as_ref(), 1, &[]);
        // a reused buffer must not leak the previous envelope's state
        let mut buf = CandidateBuf::new();
        let big: Vec<HashedKey> = [Value::Int(30), Value::Int(20), Value::Int(30)]
            .into_iter()
            .map(HashedKey::new)
            .collect();
        store.lookup_eq_flat(1, &big, &mut buf);
        assert_eq!(buf.num_keys(), 3);
        let small: Vec<HashedKey> = vec![HashedKey::new(Value::Int(99))];
        store.lookup_eq_flat(1, &small, &mut buf);
        assert_eq!(buf.num_keys(), 1);
        assert!(buf.candidates(0).is_empty());
    }

    /// Pin `lookup_eq_flat` to the scalar `lookup_eq`, key for key (same
    /// rows in the same order), through a fresh arena.
    pub fn assert_flat_matches_scalar(store: &dyn DictStore, col: usize, raw_keys: &[Value]) {
        let keys: Vec<HashedKey> = raw_keys.iter().cloned().map(HashedKey::new).collect();
        let mut buf = CandidateBuf::new();
        store.lookup_eq_flat(col, &keys, &mut buf);
        assert_eq!(buf.num_keys(), raw_keys.len());
        for (i, raw) in raw_keys.iter().enumerate() {
            let want = store.lookup_eq(col, raw);
            let got = buf.candidates(i);
            assert_eq!(
                got.len(),
                want.len(),
                "flat/scalar length drift on col {col} key {raw:?} ({})",
                store.backend()
            );
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(
                    g.as_ref(),
                    w.as_ref(),
                    "flat/scalar row drift on col {col} key {raw:?} ({})",
                    store.backend()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_key_normalizes() {
        assert_eq!(index_key(&Value::Null), None);
        assert_eq!(index_key(&Value::Eot), None);
        assert_eq!(index_key(&Value::Int(5)), Some(Value::Int(5)));
        assert_eq!(index_key(&Value::Float(5.0)), Some(Value::Int(5)));
        assert_eq!(index_key(&Value::Float(5.5)), Some(Value::Float(5.5)));
        assert_eq!(index_key(&Value::str("x")), Some(Value::str("x")));
    }

    #[test]
    fn kind_builds_expected_backend() {
        assert_eq!(StoreKind::List.build(&[]).backend(), "list");
        assert_eq!(StoreKind::Hash.build(&[0]).backend(), "hash");
        assert_eq!(
            StoreKind::Adaptive { threshold: 4 }.build(&[0]).backend(),
            "list"
        );
        assert_eq!(
            StoreKind::Partitioned {
                partitions: 4,
                mem_resident: 0
            }
            .build(&[1])
            .backend(),
            "partitioned"
        );
        assert_eq!(StoreKind::Sorted.build(&[1]).backend(), "sorted");
        assert_eq!(StoreKind::default(), StoreKind::Hash);
    }

    #[test]
    fn independently_built_stores_stay_isolated() {
        // Sharded SteMs build one store per shard via StoreKind::build;
        // an insert into one must be invisible to its siblings, and the
        // logical store is their union.
        let mut a = StoreKind::Hash.build(&[0]);
        let mut b = StoreKind::Hash.build(&[0]);
        a.insert(conformance::row(&[1, 10]));
        b.insert(Arc::new(Row::new(vec![Value::Null, Value::Int(10)])));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // A NULL-keyed (overflow-lane) row still answers lookups on other
        // columns, like the PartitionedStore lane the shard layer mirrors.
        assert_eq!(b.lookup_eq(1, &Value::Int(10)).len(), 1);
        assert_eq!(b.lookup_eq(0, &Value::Null).len(), 0);
    }

    #[test]
    fn stores_are_shareable_across_threads() {
        // Sharded SteMs probe shard stores from scoped threads via &self;
        // the trait object must be Sync (and the boxes Send).
        fn assert_sync<T: Sync + Send + ?Sized>() {}
        assert_sync::<dyn DictStore + Send + Sync>();
        let mut store = StoreKind::Hash.build(&[0]);
        store.insert(conformance::row(&[7, 8]));
        std::thread::scope(|s| {
            let store = &store;
            let h = s.spawn(move || store.lookup_eq(0, &Value::Int(7)).len());
            assert_eq!(h.join().unwrap(), 1);
        });
    }

    #[test]
    fn partitioned_and_sorted_pass_conformance_via_kind() {
        conformance::run_suite(
            StoreKind::Partitioned {
                partitions: 4,
                mem_resident: 1,
            }
            .build(&[1]),
        );
        conformance::run_suite(StoreKind::Sorted.build(&[1]));
    }
}
