//! The caller-owned arena behind [`crate::DictStore::lookup_eq_flat`].
//!
//! The batched probe path used to materialize every envelope's candidates
//! as a `Vec<Vec<Arc<Row>>>` — one heap allocation per key, per envelope,
//! discarded immediately. [`CandidateBuf`] replaces that with two flat
//! vectors owned by the *caller* (a SteM's reusable probe scratch): all
//! candidate rows back to back, plus one `(start, end)` span per key.
//! Across envelopes the vectors keep their capacity, so steady-state
//! probing allocates nothing.
//!
//! The buffer also drives **key-run dedup**: identical keys in one
//! envelope (identical = same [`stems_types::Value::equality_key`] normal
//! form, screened by the precomputed hash) resolve the index once and
//! *share* one candidate span — the paper's duplicate-heavy probe streams
//! pay for each distinct key, not each probe.

use crate::fxhash::FxHashMap;
use std::sync::Arc;
use stems_types::{HashedKey, Row};

/// Reusable flat storage for one envelope's candidate fetch. See the
/// module docs; producers are [`crate::DictStore::lookup_eq_flat`]
/// implementations, the consumer reads [`CandidateBuf::candidates`] per
/// key index.
#[derive(Debug, Default)]
pub struct CandidateBuf {
    /// Every key's candidate rows, back to back.
    rows: Vec<Arc<Row>>,
    /// Per input key, its `[start, end)` range in `rows`. Duplicate keys
    /// alias one range.
    spans: Vec<(usize, usize)>,
    /// Dedup scratch: key hash → index of the first key seen with it.
    seen: FxHashMap<u64, usize>,
    /// Index of the first un-hashable (NULL/EOT) key; all later ones
    /// share its (empty) span — such keys match nothing by contract.
    seen_unhashable: Option<usize>,
}

impl CandidateBuf {
    pub fn new() -> CandidateBuf {
        CandidateBuf::default()
    }

    /// Forget the previous envelope, keeping every allocation.
    pub fn reset(&mut self) {
        self.rows.clear();
        self.spans.clear();
        self.seen.clear();
        self.seen_unhashable = None;
    }

    /// Keys resolved so far.
    pub fn num_keys(&self) -> usize {
        self.spans.len()
    }

    /// Candidate rows of key `i`, in the order the backend produced them.
    pub fn candidates(&self, i: usize) -> &[Arc<Row>] {
        let (start, end) = self.spans[i];
        &self.rows[start..end]
    }

    /// Total candidate rows materialized (shared spans counted once) —
    /// diagnostics for benches and tests.
    pub fn rows_stored(&self) -> usize {
        self.rows.len()
    }

    /// Dedup check for key `i` of the envelope (which must be the next
    /// key to resolve): if an earlier key has the same equality normal
    /// form, returns its index — the caller then calls
    /// [`CandidateBuf::share_key`] instead of resolving the index again.
    /// Un-hashable keys all alias the first such key's empty span. On a
    /// hash collision with a *different* normal form the key simply
    /// resolves fresh (correctness over dedup).
    pub fn probe_dup(&mut self, i: usize, keys: &[HashedKey]) -> Option<usize> {
        debug_assert_eq!(i, self.spans.len(), "keys must resolve in order");
        match keys[i].hash() {
            None => match self.seen_unhashable {
                Some(j) => Some(j),
                None => {
                    self.seen_unhashable = Some(i);
                    None
                }
            },
            Some(h) => match self.seen.get(&h.get()) {
                Some(&j) if keys[j].same_lookup(&keys[i]) => Some(j),
                Some(_) => None, // true hash collision: resolve fresh
                None => {
                    self.seen.insert(h.get(), i);
                    None
                }
            },
        }
    }

    /// Start resolving the next key; returns the watermark to pass to
    /// [`CandidateBuf::commit_key`].
    pub fn begin_key(&mut self) -> usize {
        self.rows.len()
    }

    /// Append one candidate row for the key being resolved.
    pub fn push_row(&mut self, row: Arc<Row>) {
        self.rows.push(row);
    }

    /// Seal the key begun at `start`: its span is everything pushed since.
    pub fn commit_key(&mut self, start: usize) {
        debug_assert!(start <= self.rows.len());
        self.spans.push((start, self.rows.len()));
    }

    /// Record the next key as sharing key `j`'s span (key-run dedup).
    pub fn share_key(&mut self, j: usize) {
        debug_assert!(j < self.spans.len(), "shared key must already be sealed");
        let span = self.spans[j];
        self.spans.push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::Value;

    fn row(k: i64) -> Arc<Row> {
        Row::shared(vec![Value::Int(k)])
    }

    fn keys(vals: &[Value]) -> Vec<HashedKey> {
        vals.iter().cloned().map(HashedKey::new).collect()
    }

    #[test]
    fn spans_partition_the_row_arena() {
        let mut buf = CandidateBuf::new();
        let ks = keys(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(buf.probe_dup(0, &ks), None);
        let s = buf.begin_key();
        buf.push_row(row(10));
        buf.push_row(row(11));
        buf.commit_key(s);
        assert_eq!(buf.probe_dup(1, &ks), None);
        let s = buf.begin_key();
        buf.commit_key(s);
        assert_eq!(buf.num_keys(), 2);
        assert_eq!(buf.candidates(0).len(), 2);
        assert!(buf.candidates(1).is_empty());
        buf.reset();
        assert_eq!(buf.num_keys(), 0);
        assert_eq!(buf.rows_stored(), 0);
    }

    #[test]
    fn duplicates_share_spans_across_coercion_and_unhashables() {
        let mut buf = CandidateBuf::new();
        let ks = keys(&[
            Value::Int(5),
            Value::Float(5.0), // same normal form as Int(5)
            Value::Null,
            Value::Eot,        // shares the NULL key's empty span
            Value::Float(5.5), // distinct
        ]);
        assert_eq!(buf.probe_dup(0, &ks), None);
        let s = buf.begin_key();
        buf.push_row(row(5));
        buf.commit_key(s);
        assert_eq!(buf.probe_dup(1, &ks), Some(0));
        buf.share_key(0);
        assert_eq!(buf.probe_dup(2, &ks), None);
        let s = buf.begin_key();
        buf.commit_key(s);
        assert_eq!(buf.probe_dup(3, &ks), Some(2));
        buf.share_key(2);
        assert_eq!(buf.probe_dup(4, &ks), None);
        let s = buf.begin_key();
        buf.commit_key(s);
        assert_eq!(buf.num_keys(), 5);
        assert_eq!(buf.candidates(1), buf.candidates(0));
        assert_eq!(buf.rows_stored(), 1, "the duplicate resolved no rows");
        assert!(buf.candidates(3).is_empty());
    }
}
