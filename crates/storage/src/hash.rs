//! Hash store with secondary indexes per join column.

use crate::fxhash::FxHashMap;
use crate::store::{index_key, DictStore};
use std::sync::Arc;
use stems_types::{Row, Value};

/// A dictionary with one secondary hash index per join column.
///
/// This is the paper's default SteM backend (§2.1.4): "a SteM on a table S
/// has one main-memory index ... on each column of S that is involved in a
/// join predicate. These are all secondary indexes having pointers to the
/// same tuples in memory." Routing through hash-backed SteMs realizes the
/// n-ary symmetric hash join of §2.3.
///
/// Rows also live in an insertion-order list (the scan path, FIFO eviction
/// order, and the upgrade target for [`crate::AdaptiveStore`]).
#[derive(Debug)]
pub struct HashStore {
    /// Rows in insertion order; removal leaves tombstones (`None`) so that
    /// index entries (which store positions) stay valid.
    slots: Vec<Option<Arc<Row>>>,
    /// `(col, key) → row positions` secondary indexes.
    indexes: Vec<(usize, FxHashMap<Value, Vec<usize>>)>,
    live: usize,
    bytes: usize,
}

impl HashStore {
    /// Create a store with secondary indexes on `indexed_cols`.
    pub fn new(indexed_cols: &[usize]) -> HashStore {
        let mut cols: Vec<usize> = indexed_cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        HashStore {
            slots: Vec::new(),
            indexes: cols
                .into_iter()
                .map(|c| (c, FxHashMap::default()))
                .collect(),
            live: 0,
            bytes: 0,
        }
    }

    /// Which columns carry secondary indexes.
    pub fn indexed_cols(&self) -> Vec<usize> {
        self.indexes.iter().map(|(c, _)| *c).collect()
    }

    fn has_index_on(&self, col: usize) -> bool {
        self.indexes.iter().any(|(c, _)| *c == col)
    }
}

impl DictStore for HashStore {
    fn insert(&mut self, row: Arc<Row>) {
        let pos = self.slots.len();
        self.bytes += row.approx_bytes();
        for (col, idx) in &mut self.indexes {
            if let Some(k) = row.get(*col).and_then(index_key) {
                idx.entry(k).or_default().push(pos);
            }
        }
        self.slots.push(Some(row));
        self.live += 1;
    }

    fn insert_batch(&mut self, rows: Vec<Arc<Row>>) {
        // One slab reservation for the whole batch; the per-row path is
        // shared with `insert` so the two can never diverge.
        self.slots.reserve(rows.len());
        for row in rows {
            self.insert(row);
        }
    }

    fn lookup_eq_batch(&self, col: usize, keys: &[Value]) -> Vec<Vec<Arc<Row>>> {
        // Resolve the secondary index once for the whole batch instead of
        // re-finding it per key.
        match self.indexes.iter().find(|(c, _)| *c == col) {
            Some((_, idx)) => keys
                .iter()
                .map(|key| match index_key(key) {
                    Some(k) => idx
                        .get(&k)
                        .map(|positions| {
                            positions
                                .iter()
                                .filter_map(|p| self.slots[*p].clone())
                                .collect()
                        })
                        .unwrap_or_default(),
                    None => Vec::new(),
                })
                .collect(),
            None => keys.iter().map(|k| self.lookup_eq(col, k)).collect(),
        }
    }

    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>> {
        let Some(k) = index_key(key) else {
            return Vec::new();
        };
        if self.has_index_on(col) {
            let (_, idx) = self
                .indexes
                .iter()
                .find(|(c, _)| *c == col)
                .expect("checked above");
            idx.get(&k)
                .map(|positions| {
                    positions
                        .iter()
                        .filter_map(|p| self.slots[*p].clone())
                        .collect()
                })
                .unwrap_or_default()
        } else {
            // No index on this column: fall back to scan-filter. Correct,
            // just slower — mirrors a SteM probed on an unindexed predicate.
            self.slots
                .iter()
                .flatten()
                .filter(|r| r.get(col).and_then(index_key).is_some_and(|rk| rk == k))
                .cloned()
                .collect()
        }
    }

    fn scan(&self) -> Vec<Arc<Row>> {
        self.slots.iter().flatten().cloned().collect()
    }

    fn remove(&mut self, row: &Row) -> bool {
        let Some(pos) = self.slots.iter().position(|r| r.as_deref() == Some(row)) else {
            return false;
        };
        let removed = self.slots[pos].take().expect("position found above");
        self.bytes = self.bytes.saturating_sub(removed.approx_bytes());
        self.live -= 1;
        for (col, idx) in &mut self.indexes {
            if let Some(k) = removed.get(*col).and_then(index_key) {
                if let Some(positions) = idx.get_mut(&k) {
                    positions.retain(|p| *p != pos);
                    if positions.is_empty() {
                        idx.remove(&k);
                    }
                }
            }
        }
        true
    }

    fn oldest(&self) -> Option<Arc<Row>> {
        self.slots.iter().flatten().next().cloned()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn approx_bytes(&self) -> usize {
        // Rows + a rough 16 bytes of index overhead per (index, row) pair.
        self.bytes + self.indexes.len() * self.live * 16 + std::mem::size_of::<HashStore>()
    }

    fn backend(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance::{self, row};

    #[test]
    fn conformance_suite() {
        conformance::run_suite(Box::new(HashStore::new(&[1])));
    }

    #[test]
    fn conformance_without_matching_index() {
        // Same behaviour expected when lookups hit the scan-filter path.
        conformance::run_suite(Box::new(HashStore::new(&[0])));
    }

    #[test]
    fn multiple_secondary_indexes_share_rows() {
        // Mirrors the paper's S table: indexes on both x and y.
        let mut s = HashStore::new(&[0, 1]);
        s.insert(row(&[7, 8]));
        let by_x = s.lookup_eq(0, &Value::Int(7));
        let by_y = s.lookup_eq(1, &Value::Int(8));
        assert_eq!(by_x.len(), 1);
        assert_eq!(by_y.len(), 1);
        // same allocation, not a copy
        assert!(Arc::ptr_eq(&by_x[0], &by_y[0]));
    }

    #[test]
    fn duplicate_index_cols_deduped() {
        let s = HashStore::new(&[1, 1, 0]);
        assert_eq!(s.indexed_cols(), vec![0, 1]);
    }

    #[test]
    fn removal_cleans_index_entries() {
        let mut s = HashStore::new(&[0]);
        s.insert(row(&[5]));
        s.insert(row(&[5]));
        assert!(s.remove(&row(&[5])));
        assert_eq!(s.lookup_eq(0, &Value::Int(5)).len(), 1);
        assert!(s.remove(&row(&[5])));
        assert_eq!(s.lookup_eq(0, &Value::Int(5)).len(), 0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn out_of_range_index_column_is_harmless() {
        let mut s = HashStore::new(&[9]);
        s.insert(row(&[1, 2]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup_eq(9, &Value::Int(1)).len(), 0);
        assert_eq!(s.lookup_eq(0, &Value::Int(1)).len(), 1);
    }
}
