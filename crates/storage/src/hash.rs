//! Hash store with secondary indexes per join column.

use crate::flat::CandidateBuf;
use crate::prehash::PrehashedMap;
use crate::store::{index_key, lookup_eq_flat_via_scalar, DictStore};
use std::sync::Arc;
use stems_types::{HashedKey, KeyHash, Row, Value};

/// A dictionary with one secondary hash index per join column.
///
/// This is the paper's default SteM backend (§2.1.4): "a SteM on a table S
/// has one main-memory index ... on each column of S that is involved in a
/// join predicate. These are all secondary indexes having pointers to the
/// same tuples in memory." Routing through hash-backed SteMs realizes the
/// n-ary symmetric hash join of §2.3.
///
/// Rows also live in an insertion-order list (the scan path, FIFO eviction
/// order, and the upgrade target for [`crate::AdaptiveStore`]).
///
/// The secondary indexes are [`PrehashedMap`]s keyed by
/// [`Value::stable_key_hash`] of the equality normal form: probes arriving
/// through [`DictStore::lookup_eq_flat`] carry that hash precomputed
/// ([`HashedKey`]) and descend the index without re-hashing — the
/// hash-once contract of the flat probe pipeline.
#[derive(Debug)]
pub struct HashStore {
    /// Rows in insertion order; removal leaves tombstones (`None`) so that
    /// index entries (which store positions) stay valid.
    slots: Vec<Option<Arc<Row>>>,
    /// `(col, key) → row positions` secondary indexes.
    indexes: Vec<(usize, PrehashedMap<Vec<usize>>)>,
    live: usize,
    bytes: usize,
}

/// The stable hash of an equality-normalized key. Normal forms are never
/// NULL/EOT, so the hash always exists.
fn hash_of_normalized(k: &Value) -> KeyHash {
    KeyHash(
        k.stable_key_hash()
            .expect("equality-normalized keys are hashable"),
    )
}

impl HashStore {
    /// Create a store with secondary indexes on `indexed_cols`.
    pub fn new(indexed_cols: &[usize]) -> HashStore {
        let mut cols: Vec<usize> = indexed_cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        HashStore {
            slots: Vec::new(),
            indexes: cols.into_iter().map(|c| (c, PrehashedMap::new())).collect(),
            live: 0,
            bytes: 0,
        }
    }

    /// Which columns carry secondary indexes.
    pub fn indexed_cols(&self) -> Vec<usize> {
        self.indexes.iter().map(|(c, _)| *c).collect()
    }

    fn index_on(&self, col: usize) -> Option<&PrehashedMap<Vec<usize>>> {
        self.indexes
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, idx)| idx)
    }

    /// Materialize one index entry's rows into `out`.
    fn gather_positions(&self, positions: &[usize], out: &mut CandidateBuf) {
        for p in positions {
            if let Some(row) = &self.slots[*p] {
                out.push_row(row.clone());
            }
        }
    }
}

impl DictStore for HashStore {
    fn insert(&mut self, row: Arc<Row>) {
        let pos = self.slots.len();
        self.bytes += row.approx_bytes();
        for (col, idx) in &mut self.indexes {
            if let Some(k) = row.get(*col).and_then(index_key) {
                idx.get_or_insert_default(hash_of_normalized(&k), &k)
                    .push(pos);
            }
        }
        self.slots.push(Some(row));
        self.live += 1;
    }

    fn insert_batch(&mut self, rows: Vec<Arc<Row>>) {
        // One slab reservation for the whole batch; the per-row path is
        // shared with `insert` so the two can never diverge.
        self.slots.reserve(rows.len());
        for row in rows {
            self.insert(row);
        }
    }

    fn lookup_eq_flat(&self, col: usize, keys: &[HashedKey], out: &mut CandidateBuf) {
        let Some(idx) = self.index_on(col) else {
            // No index on this column: scan-filter per distinct key.
            lookup_eq_flat_via_scalar(self, col, keys, out);
            return;
        };
        out.reset();
        for (i, key) in keys.iter().enumerate() {
            if let Some(j) = out.probe_dup(i, keys) {
                out.share_key(j);
                continue;
            }
            let start = out.begin_key();
            // The envelope's precomputed hash descends the index directly
            // — no re-hashing of Str/Float keys per probe.
            if let (Some(k), Some(h)) = (key.key(), key.hash()) {
                if let Some(positions) = idx.get(h, k) {
                    self.gather_positions(positions, out);
                }
            }
            out.commit_key(start);
        }
    }

    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>> {
        let Some(k) = index_key(key) else {
            return Vec::new();
        };
        if let Some(idx) = self.index_on(col) {
            idx.get(hash_of_normalized(&k), &k)
                .map(|positions| {
                    positions
                        .iter()
                        .filter_map(|p| self.slots[*p].clone())
                        .collect()
                })
                .unwrap_or_default()
        } else {
            // No index on this column: fall back to scan-filter. Correct,
            // just slower — mirrors a SteM probed on an unindexed predicate.
            self.slots
                .iter()
                .flatten()
                .filter(|r| r.get(col).and_then(index_key).is_some_and(|rk| rk == k))
                .cloned()
                .collect()
        }
    }

    fn scan(&self) -> Vec<Arc<Row>> {
        self.slots.iter().flatten().cloned().collect()
    }

    fn remove(&mut self, row: &Row) -> bool {
        let Some(pos) = self.slots.iter().position(|r| r.as_deref() == Some(row)) else {
            return false;
        };
        let removed = self.slots[pos].take().expect("position found above");
        self.bytes = self.bytes.saturating_sub(removed.approx_bytes());
        self.live -= 1;
        for (col, idx) in &mut self.indexes {
            if let Some(k) = removed.get(*col).and_then(index_key) {
                let h = hash_of_normalized(&k);
                if let Some(positions) = idx.get_mut(h, &k) {
                    positions.retain(|p| *p != pos);
                    if positions.is_empty() {
                        idx.remove(h, &k);
                    }
                }
            }
        }
        true
    }

    fn oldest(&self) -> Option<Arc<Row>> {
        self.slots.iter().flatten().next().cloned()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn approx_bytes(&self) -> usize {
        // Rows + a rough 16 bytes of index overhead per (index, row) pair.
        self.bytes + self.indexes.len() * self.live * 16 + std::mem::size_of::<HashStore>()
    }

    fn backend(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance::{self, row};

    #[test]
    fn conformance_suite() {
        conformance::run_suite(Box::new(HashStore::new(&[1])));
    }

    #[test]
    fn conformance_without_matching_index() {
        // Same behaviour expected when lookups hit the scan-filter path.
        conformance::run_suite(Box::new(HashStore::new(&[0])));
    }

    #[test]
    fn multiple_secondary_indexes_share_rows() {
        // Mirrors the paper's S table: indexes on both x and y.
        let mut s = HashStore::new(&[0, 1]);
        s.insert(row(&[7, 8]));
        let by_x = s.lookup_eq(0, &Value::Int(7));
        let by_y = s.lookup_eq(1, &Value::Int(8));
        assert_eq!(by_x.len(), 1);
        assert_eq!(by_y.len(), 1);
        // same allocation, not a copy
        assert!(Arc::ptr_eq(&by_x[0], &by_y[0]));
    }

    #[test]
    fn duplicate_index_cols_deduped() {
        let s = HashStore::new(&[1, 1, 0]);
        assert_eq!(s.indexed_cols(), vec![0, 1]);
    }

    #[test]
    fn removal_cleans_index_entries() {
        let mut s = HashStore::new(&[0]);
        s.insert(row(&[5]));
        s.insert(row(&[5]));
        assert!(s.remove(&row(&[5])));
        assert_eq!(s.lookup_eq(0, &Value::Int(5)).len(), 1);
        assert!(s.remove(&row(&[5])));
        assert_eq!(s.lookup_eq(0, &Value::Int(5)).len(), 0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn out_of_range_index_column_is_harmless() {
        let mut s = HashStore::new(&[9]);
        s.insert(row(&[1, 2]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup_eq(9, &Value::Int(1)).len(), 0);
        assert_eq!(s.lookup_eq(0, &Value::Int(1)).len(), 1);
    }

    #[test]
    fn flat_lookup_skips_tombstones_and_dedups() {
        let mut s = HashStore::new(&[0]);
        s.insert(row(&[5, 1]));
        s.insert(row(&[5, 2]));
        s.insert(row(&[6, 3]));
        assert!(s.remove(&row(&[5, 1])));
        let keys: Vec<HashedKey> = [Value::Int(5), Value::Float(5.0), Value::Int(6)]
            .into_iter()
            .map(HashedKey::new)
            .collect();
        let mut buf = CandidateBuf::new();
        s.lookup_eq_flat(0, &keys, &mut buf);
        assert_eq!(buf.candidates(0).len(), 1);
        assert_eq!(buf.candidates(0), buf.candidates(1), "coercion dedup");
        assert_eq!(buf.candidates(2).len(), 1);
        // Two distinct keys resolved; the coerced duplicate shared.
        assert_eq!(buf.rows_stored(), 2);
    }
}
