//! A small Fx-style hasher, implemented in-repo so we stay within the
//! approved dependency set.
//!
//! Join keys are overwhelmingly small integers and short strings; SipHash's
//! HashDoS protection buys nothing inside a query engine that hashes its own
//! data structures, and costs real cycles on the probe path (see the Rust
//! perf book's "Hashing" chapter). This is the same multiply-rotate scheme
//! as `rustc-hash`.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash mixing constant (64-bit golden-ratio multiplier).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinct_small_ints_spread() {
        let hashes: std::collections::HashSet<u64> = (0..1000u64).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<i64, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }

    #[test]
    fn write_bytes_handles_partial_chunks() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3]);
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]);
        assert_ne!(h1.finish(), h3.finish());
    }
}
