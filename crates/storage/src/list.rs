//! Append-only list store.

use crate::store::{index_key, DictStore};
use std::sync::Arc;
use stems_types::{Row, Value};

/// The simplest dictionary: rows in insertion order, lookups by scan.
///
/// Cheap to build into (no index maintenance) and perfectly adequate while
/// small — which is why the paper suggests starting SteMs as linked lists
/// and adapting to hash later (§3.1); see [`crate::AdaptiveStore`].
#[derive(Debug, Default)]
pub struct ListStore {
    rows: Vec<Arc<Row>>,
    bytes: usize,
}

impl ListStore {
    pub fn new() -> ListStore {
        ListStore::default()
    }

    /// Drain the rows out (used when an [`crate::AdaptiveStore`] upgrades
    /// itself to a hash store).
    pub(crate) fn take_rows(&mut self) -> Vec<Arc<Row>> {
        self.bytes = 0;
        std::mem::take(&mut self.rows)
    }
}

impl DictStore for ListStore {
    fn insert(&mut self, row: Arc<Row>) {
        self.bytes += row.approx_bytes();
        self.rows.push(row);
    }

    fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Arc<Row>> {
        let Some(k) = index_key(key) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter(|r| r.get(col).and_then(index_key).is_some_and(|rk| rk == k))
            .cloned()
            .collect()
    }

    fn scan(&self) -> Vec<Arc<Row>> {
        self.rows.clone()
    }

    fn remove(&mut self, row: &Row) -> bool {
        if let Some(pos) = self.rows.iter().position(|r| r.as_ref() == row) {
            let r = self.rows.remove(pos);
            self.bytes = self.bytes.saturating_sub(r.approx_bytes());
            true
        } else {
            false
        }
    }

    fn oldest(&self) -> Option<Arc<Row>> {
        self.rows.first().cloned()
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes + std::mem::size_of::<ListStore>()
    }

    fn backend(&self) -> &'static str {
        "list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_suite(Box::new(ListStore::new()));
    }

    #[test]
    fn take_rows_empties_store() {
        let mut s = ListStore::new();
        s.insert(conformance::row(&[1]));
        s.insert(conformance::row(&[2]));
        let rows = s.take_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(s.len(), 0);
        assert_eq!(s.approx_bytes(), std::mem::size_of::<ListStore>());
    }
}
