//! Symmetric hash joins: the pipelining binary operator \[WA91\] and the
//! fig 2(i) pipeline of binary SHJs with intermediate-result
//! materialization.

use crate::{ArrivalStream, BaselineRun};
use std::sync::Arc;
use stems_sim::Time;
use stems_storage::fxhash::FxHashMap;
use stems_storage::index_key;
use stems_types::{Row, TableIdx, Tuple, Value};

/// SHJ timing parameters.
#[derive(Debug, Clone)]
pub struct ShjParams {
    /// Local cost of one build+probe step, µs. SHJ is CPU-light; arrival
    /// rates dominate, as in the paper's fig 8.
    pub op_cost_us: u64,
}

impl Default for ShjParams {
    fn default() -> Self {
        ShjParams { op_cost_us: 50 }
    }
}

/// Binary symmetric hash join of two scanned inputs on
/// `left.col = right.col`. Emits each result when its later side arrives.
pub fn symmetric_hash_join(
    left: &ArrivalStream,
    left_instance: TableIdx,
    left_col: usize,
    right: &ArrivalStream,
    right_instance: TableIdx,
    right_col: usize,
    params: &ShjParams,
) -> BaselineRun {
    let mut run = BaselineRun::new();
    let mut left_ht: FxHashMap<Value, Vec<Arc<Row>>> = FxHashMap::default();
    let mut right_ht: FxHashMap<Value, Vec<Arc<Row>>> = FxHashMap::default();
    let mut mem_bytes = 0usize;
    let mut builds = 0u64;

    for (t, is_left, row) in ArrivalStream::merge(left, right) {
        let emit_at = t + params.op_cost_us;
        mem_bytes += row.approx_bytes();
        builds += 1;
        if builds.is_multiple_of(64) {
            run.observe("mem_bytes", t, mem_bytes as f64);
        }
        let (own_ht, other_ht, own_col, other_is) = if is_left {
            (&mut left_ht, &right_ht, left_col, right_instance)
        } else {
            (&mut right_ht, &left_ht, right_col, left_instance)
        };
        let Some(key) = row.get(own_col).and_then(index_key) else {
            continue; // NULL join keys build nowhere and match nothing
        };
        own_ht.entry(key.clone()).or_default().push(row.clone());
        if let Some(matches) = other_ht.get(&key) {
            for m in matches {
                let own_inst = if is_left {
                    left_instance
                } else {
                    right_instance
                };
                let result = Tuple::singleton(own_inst, row.clone())
                    .concat(&Tuple::singleton(other_is, m.clone()));
                run.emit(emit_at, result);
            }
        }
        run.end_time = run.end_time.max(emit_at);
    }
    run.observe("mem_bytes", run.end_time, mem_bytes as f64);
    run
}

/// One stage of a left-deep SHJ pipeline: joins the accumulated prefix
/// against a new scanned input on `prefix (prev_instance, prev_col) =
/// (instance, col)`.
#[derive(Debug, Clone)]
pub struct PipelineStage {
    pub stream: ArrivalStream,
    pub instance: TableIdx,
    /// Column on this stage's table.
    pub col: usize,
    /// The join partner within the prefix.
    pub prev_instance: TableIdx,
    pub prev_col: usize,
}

/// Fig 2(i): a left-deep pipeline of binary SHJs.
///
/// Every stage materializes **both** its inputs, so stages above the first
/// store intermediate (composite) tuples — the memory cost the n-ary SHJ
/// through SteMs avoids by storing singletons only (paper §2.3). The
/// `"mem_bytes"` series records the total hash-table footprint.
pub fn pipelined_shj(
    first: (&ArrivalStream, TableIdx),
    stages: &[PipelineStage],
    params: &ShjParams,
) -> BaselineRun {
    assert!(!stages.is_empty(), "pipeline needs at least one join");
    let mut run = BaselineRun::new();

    // Per stage: left hash table (prefix composites keyed by the stage's
    // prefix column) and right hash table (the stage's own singletons).
    struct Stage {
        left_ht: FxHashMap<Value, Vec<Tuple>>,
        right_ht: FxHashMap<Value, Vec<Arc<Row>>>,
        meta: PipelineStage,
    }
    let mut built: Vec<Stage> = stages
        .iter()
        .map(|m| Stage {
            left_ht: FxHashMap::default(),
            right_ht: FxHashMap::default(),
            meta: m.clone(),
        })
        .collect();

    // Global arrival agenda: (time, source index) with 0 = the first
    // (leftmost) input, i+1 = stage i's own input.
    let mut events: Vec<(Time, usize, Arc<Row>)> = Vec::new();
    for (t, r) in first.0.items() {
        events.push((*t, 0, r.clone()));
    }
    for (i, st) in stages.iter().enumerate() {
        for (t, r) in st.stream.items() {
            events.push((*t, i + 1, r.clone()));
        }
    }
    events.sort_by_key(|a| (a.0, a.1));

    let mut mem_bytes = 0usize;
    let mut builds = 0u64;

    // Insert a composite into stage `si`'s left side and cascade matches.
    fn cascade(
        stages: &mut [Stage],
        si: usize,
        tuple: Tuple,
        t: Time,
        op_cost: u64,
        run: &mut BaselineRun,
        mem: &mut usize,
    ) {
        if si >= stages.len() {
            run.emit(t, tuple);
            return;
        }
        let key = tuple
            .value(stages[si].meta.prev_instance, stages[si].meta.prev_col)
            .and_then(index_key);
        let Some(key) = key else { return };
        *mem += tuple.approx_bytes();
        stages[si]
            .left_ht
            .entry(key.clone())
            .or_default()
            .push(tuple.clone());
        let matches: Vec<Arc<Row>> = stages[si].right_ht.get(&key).cloned().unwrap_or_default();
        let inst = stages[si].meta.instance;
        for m in matches {
            let joined = tuple.concat(&Tuple::singleton(inst, m));
            cascade(stages, si + 1, joined, t + op_cost, op_cost, run, mem);
        }
    }

    for (t, src, row) in events {
        builds += 1;
        if builds.is_multiple_of(64) {
            run.observe("mem_bytes", t, mem_bytes as f64);
        }
        let emit_at = t + params.op_cost_us;
        if src == 0 {
            let tuple = Tuple::singleton(first.1, row);
            cascade(
                &mut built,
                0,
                tuple,
                emit_at,
                params.op_cost_us,
                &mut run,
                &mut mem_bytes,
            );
        } else {
            let si = src - 1;
            let inst = built[si].meta.instance;
            let Some(key) = row.get(built[si].meta.col).and_then(index_key) else {
                continue;
            };
            mem_bytes += row.approx_bytes();
            built[si]
                .right_ht
                .entry(key.clone())
                .or_default()
                .push(row.clone());
            let matches: Vec<Tuple> = built[si].left_ht.get(&key).cloned().unwrap_or_default();
            for m in matches {
                let joined = m.concat(&Tuple::singleton(inst, row.clone()));
                cascade(
                    &mut built,
                    si + 1,
                    joined,
                    emit_at,
                    params.op_cost_us,
                    &mut run,
                    &mut mem_bytes,
                );
            }
        }
        run.end_time = run.end_time.max(emit_at);
    }
    run.observe("mem_bytes", run.end_time, mem_bytes as f64);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{ScanSpec, TableDef};
    use stems_types::{ColumnType, Schema};

    fn stream(vals: &[(i64, i64)], rate: f64) -> ArrivalStream {
        let t = TableDef::new(
            "t",
            Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
        )
        .with_rows(
            vals.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
                .collect(),
        );
        ArrivalStream::from_scan(&t, &ScanSpec::with_rate(rate))
    }

    #[test]
    fn binary_shj_joins_exactly() {
        // left.v = right.v
        let left = stream(&[(0, 1), (1, 2), (2, 1)], 100.0);
        let right = stream(&[(0, 1), (1, 3)], 80.0);
        let run = symmetric_hash_join(
            &left,
            TableIdx(0),
            1,
            &right,
            TableIdx(1),
            1,
            &ShjParams::default(),
        );
        // v=1: 2 left × 1 right = 2 results.
        assert_eq!(run.results.len(), 2);
        for r in &run.results {
            assert_eq!(r.value(TableIdx(0), 1), r.value(TableIdx(1), 1));
        }
    }

    #[test]
    fn results_emitted_at_later_arrival() {
        let left = stream(&[(0, 1)], 100.0); // arrives at 10ms
        let right = stream(&[(0, 1)], 10.0); // arrives at 100ms
        let run = symmetric_hash_join(
            &left,
            TableIdx(0),
            1,
            &right,
            TableIdx(1),
            1,
            &ShjParams::default(),
        );
        assert_eq!(run.results.len(), 1);
        let s = run.metrics.series("results").unwrap();
        assert_eq!(s.value_at(99_999), 0.0);
        assert_eq!(s.value_at(100_050 + 10), 1.0);
    }

    #[test]
    fn pipeline_three_way_chain() {
        // A.v = B.v, B.k = C.k
        let a = stream(&[(0, 1), (1, 2)], 100.0);
        let b = stream(&[(0, 1), (1, 2)], 90.0);
        let c = stream(&[(0, 9), (1, 9)], 80.0);
        let run = pipelined_shj(
            (&a, TableIdx(0)),
            &[
                PipelineStage {
                    stream: b.clone(),
                    instance: TableIdx(1),
                    col: 1,
                    prev_instance: TableIdx(0),
                    prev_col: 1,
                },
                PipelineStage {
                    stream: c.clone(),
                    instance: TableIdx(2),
                    col: 0,
                    prev_instance: TableIdx(1),
                    prev_col: 0,
                },
            ],
            &ShjParams::default(),
        );
        // A⋈B on v: (0,1)-(0,1), (1,2)-(1,2). Then AB.k(B) = C.k: both.
        assert_eq!(run.results.len(), 2);
        for r in &run.results {
            assert_eq!(r.span().len(), 3);
        }
    }

    #[test]
    fn pipeline_materializes_intermediates() {
        // Many A-B pairs: intermediate storage should dominate memory.
        let pairs: Vec<(i64, i64)> = (0..20).map(|k| (k, 0)).collect();
        let a = stream(&pairs, 1000.0);
        let b = stream(&pairs, 900.0);
        let c = stream(&[(0, 0)], 800.0);
        let run = pipelined_shj(
            (&a, TableIdx(0)),
            &[
                PipelineStage {
                    stream: b,
                    instance: TableIdx(1),
                    col: 1,
                    prev_instance: TableIdx(0),
                    prev_col: 1,
                },
                PipelineStage {
                    stream: c,
                    instance: TableIdx(2),
                    col: 0,
                    prev_instance: TableIdx(1),
                    prev_col: 0,
                },
            ],
            &ShjParams::default(),
        );
        // 20×20 AB pairs materialized in stage 2's left table.
        let mem = run.metrics.series("mem_bytes").unwrap().last_value();
        // Singleton-only storage would be ~41 rows; composites make it
        // hundreds of tuple records.
        assert!(mem > 400.0 * 20.0, "mem={mem}");
        // Join on B.k = C.k with only k=0 in C: 20 results (A×{b0}×{c0})…
        // A.v=0 all, B.v=0 all ⇒ AB = 400 pairs; C.k=0 matches b with k=0
        // ⇒ 20 results.
        assert_eq!(run.results.len(), 20);
    }
}
