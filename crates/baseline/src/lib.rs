//! Traditional query operators, simulated on the same virtual clock as the
//! eddy — the paper's comparators.
//!
//! Each operator here is a *static plan*: access methods, join algorithm
//! and order are fixed up front, exactly what the SteM architecture
//! competes against in the paper's figures:
//!
//! * [`index_join`] — the fig-5 plan: an R scan drives lookups into an
//!   encapsulated index-join module with an internal lookup cache and a
//!   **single input queue**, which is what produces the head-of-line
//!   blocking the paper dissects in §4.2. (For two-table queries this also
//!   covers the "eddy with join modules" architecture of fig 1(b): with a
//!   single join module there is nothing for that eddy to reorder, so its
//!   dynamics collapse to this plan's.)
//! * [`symmetric_hash_join`] — the pipelining binary SHJ \[WA91\].
//! * [`pipelined_shj`] — fig 2(i): a tree of binary SHJs materializing
//!   intermediate results, with memory accounting (contrast with the n-ary
//!   SHJ through SteMs, fig 2(iii), which stores only singletons).
//! * [`grace_hash_join`] — blocking two-phase Grace \[FKT86\], plus the
//!   memory-resident-partition variant that makes it Hybrid-Hash \[DKO+84\].
//! * [`sort_merge_join`] — blocking sort-merge.
//!
//! All operators consume [`ArrivalStream`]s derived from the catalog's
//! scan specs, produce exact result tuples (cross-checked against the
//! reference executor in tests) and record the same `"results"` /
//! `"index_probes"` / `"mem_bytes"` series the eddy reports, so bench
//! binaries can overlay the curves.

mod arrivals;
mod grace;
mod index_join;
mod run;
mod shj;
mod sortmerge;

pub use arrivals::ArrivalStream;
pub use grace::{grace_hash_join, GraceParams};
pub use index_join::{index_join, IndexJoinParams};
pub use run::BaselineRun;
pub use shj::{pipelined_shj, symmetric_hash_join, PipelineStage, ShjParams};
pub use sortmerge::{sort_merge_join, SortMergeParams};
