//! Blocking sort-merge join baseline.
//!
//! Paper §3.1: SteMs "implemented with tournament trees that spill sorted
//! runs to disk will simulate a Sort-Merge join". This is the static-plan
//! version: consume both inputs, sort, merge — everything emitted in a
//! tail burst after sorting.

use crate::{ArrivalStream, BaselineRun};
use std::sync::Arc;
use stems_storage::index_key;
use stems_types::{Row, TableIdx, Tuple, Value};

/// Sort-merge parameters.
#[derive(Debug, Clone)]
pub struct SortMergeParams {
    pub left_instance: TableIdx,
    pub left_col: usize,
    pub right_instance: TableIdx,
    pub right_col: usize,
    /// Cost of one comparison during sorting, µs (sort ≈ n·log₂n·cost).
    pub compare_cost_us: f64,
    /// Cost per emitted result during the merge, µs.
    pub emit_cost_us: u64,
}

impl Default for SortMergeParams {
    fn default() -> Self {
        SortMergeParams {
            left_instance: TableIdx(0),
            left_col: 0,
            right_instance: TableIdx(1),
            right_col: 0,
            compare_cost_us: 1.0,
            emit_cost_us: 10,
        }
    }
}

fn sort_cost(n: usize, per_cmp: f64) -> u64 {
    if n < 2 {
        return 0;
    }
    (n as f64 * (n as f64).log2() * per_cmp).round() as u64
}

/// Run a blocking sort-merge join over two scanned inputs.
pub fn sort_merge_join(
    left: &ArrivalStream,
    right: &ArrivalStream,
    params: &SortMergeParams,
) -> BaselineRun {
    let mut run = BaselineRun::new();
    let keyed = |items: &[(u64, Arc<Row>)], col: usize| -> Vec<(Value, Arc<Row>)> {
        let mut v: Vec<(Value, Arc<Row>)> = items
            .iter()
            .filter_map(|(_, r)| r.get(col).and_then(index_key).map(|k| (k, r.clone())))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    };
    let l = keyed(left.items(), params.left_col);
    let r = keyed(right.items(), params.right_col);

    let inputs_done = left.completion_time().max(right.completion_time());
    let sorted_at = inputs_done
        + sort_cost(l.len(), params.compare_cost_us)
        + sort_cost(r.len(), params.compare_cost_us);
    run.observe("sorted_at", sorted_at, 1.0);

    let mut t = sorted_at;
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.total_cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full group cross-product.
                let key = l[i].0.clone();
                let li0 = i;
                while i < l.len() && l[i].0 == key {
                    i += 1;
                }
                let rj0 = j;
                while j < r.len() && r[j].0 == key {
                    j += 1;
                }
                for lrow in &l[li0..i] {
                    for rrow in &r[rj0..j] {
                        t += params.emit_cost_us;
                        let result = Tuple::singleton(params.left_instance, lrow.1.clone())
                            .concat(&Tuple::singleton(params.right_instance, rrow.1.clone()));
                        run.emit(t, result);
                    }
                }
            }
        }
    }
    run.end_time = run.end_time.max(t);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{ScanSpec, TableDef};
    use stems_types::{ColumnType, Schema};

    fn stream(keys: &[i64], rate: f64) -> ArrivalStream {
        let t = TableDef::new("t", Schema::of(&[("k", ColumnType::Int)]))
            .with_rows(keys.iter().map(|k| vec![Value::Int(*k)]).collect());
        ArrivalStream::from_scan(&t, &ScanSpec::with_rate(rate))
    }

    #[test]
    fn joins_groups_correctly() {
        let left = stream(&[3, 1, 3, 7], 100.0);
        let right = stream(&[3, 3, 1], 100.0);
        let run = sort_merge_join(&left, &right, &SortMergeParams::default());
        // key 3: 2×2 = 4; key 1: 1×1 = 1 → 5 results.
        assert_eq!(run.results.len(), 5);
        for res in &run.results {
            assert_eq!(res.value(TableIdx(0), 0), res.value(TableIdx(1), 0));
        }
    }

    #[test]
    fn blocks_until_inputs_and_sort_finish() {
        let left = stream(&(0..100).collect::<Vec<_>>(), 1000.0);
        let right = stream(&(0..100).collect::<Vec<_>>(), 100.0); // done at 1s
        let run = sort_merge_join(&left, &right, &SortMergeParams::default());
        let s = run.metrics.series("results").unwrap();
        assert_eq!(s.value_at(right.completion_time()), 0.0);
        assert_eq!(run.results.len(), 100);
    }

    #[test]
    fn nulls_ignored() {
        let t = TableDef::new("t", Schema::of(&[("k", ColumnType::Int)]))
            .with_rows(vec![vec![Value::Null], vec![Value::Int(1)]]);
        let left = ArrivalStream::from_scan(&t, &ScanSpec::with_rate(10.0));
        let right = stream(&[1], 10.0);
        let run = sort_merge_join(&left, &right, &SortMergeParams::default());
        assert_eq!(run.results.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        let left = stream(&[], 10.0);
        let right = stream(&[1], 10.0);
        let run = sort_merge_join(&left, &right, &SortMergeParams::default());
        assert_eq!(run.results.len(), 0);
    }
}
