//! The static index-join plan (paper fig 5) — the fig-7 baseline.
//!
//! "In a traditional query processor, this query will be executed using an
//! index join module" whose cache lookup and index lookup are hidden
//! behind **one input queue**. The module is a serial server: each driving
//! tuple occupies it either for a cache hit (cheap) or for a full remote
//! lookup (the paper's 'sleep'). Cache-hit tuples stuck behind misses are
//! exactly the §4.2 head-of-line blocking: "many of the R tuples may not
//! need to probe into the S index at all — they may find matches in the
//! cache itself", but "these probes can only happen at the speed of the
//! index join".

use crate::{ArrivalStream, BaselineRun};
use std::sync::Arc;
use stems_sim::Time;
use stems_storage::fxhash::{FxHashMap, FxHashSet};
use stems_storage::index_key;
use stems_types::{Row, TableIdx, Tuple, Value};

/// Index-join timing parameters.
#[derive(Debug, Clone)]
pub struct IndexJoinParams {
    /// Remote lookup latency (the Table 3 "sleep"), µs.
    pub lookup_latency_us: u64,
    /// Local cost of a cache hit, µs.
    pub hit_cost_us: u64,
    /// Which table instances the driving / indexed rows belong to.
    pub outer_instance: TableIdx,
    pub inner_instance: TableIdx,
    /// Join columns: outer.col = inner.col.
    pub outer_col: usize,
    pub inner_col: usize,
}

/// Run the plan: `outer` rows arrive by scan and drive lookups into an
/// index on `inner_rows`. Returns exact results plus the `"results"` and
/// `"index_probes"` series of fig 7.
pub fn index_join(
    outer: &ArrivalStream,
    inner_rows: &[Arc<Row>],
    params: &IndexJoinParams,
) -> BaselineRun {
    // Pre-build the remote index: key → rows.
    let mut index: FxHashMap<Value, Vec<Arc<Row>>> = FxHashMap::default();
    for r in inner_rows {
        if let Some(k) = r.get(params.inner_col).and_then(index_key) {
            index.entry(k).or_default().push(r.clone());
        }
    }

    let mut run = BaselineRun::new();
    let mut cached: FxHashSet<Value> = FxHashSet::default();
    let mut free_at: Time = 0;

    for (arrive, row) in outer.items() {
        let start = free_at.max(*arrive);
        let key = row.get(params.outer_col).and_then(index_key);
        let (done, matches) = match key {
            None => (start + params.hit_cost_us, Vec::new()),
            Some(k) => {
                if cached.contains(&k) {
                    (
                        start + params.hit_cost_us,
                        index.get(&k).cloned().unwrap_or_default(),
                    )
                } else {
                    // Miss: the module blocks on the remote lookup.
                    run.note("index_probes", start, 1);
                    cached.insert(k.clone());
                    (
                        start + params.lookup_latency_us,
                        index.get(&k).cloned().unwrap_or_default(),
                    )
                }
            }
        };
        for m in matches {
            let result = Tuple::singleton(params.outer_instance, row.clone())
                .concat(&Tuple::singleton(params.inner_instance, m));
            run.emit(done, result);
        }
        run.end_time = run.end_time.max(done);
        free_at = done;
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{ScanSpec, TableDef};
    use stems_sim::secs;
    use stems_types::{ColumnType, Schema};

    fn params() -> IndexJoinParams {
        IndexJoinParams {
            lookup_latency_us: secs(1),
            hit_cost_us: 1_000,
            outer_instance: TableIdx(0),
            inner_instance: TableIdx(1),
            outer_col: 1,
            inner_col: 0,
        }
    }

    fn outer_stream(a_vals: &[i64], rate: f64) -> ArrivalStream {
        let rows: Vec<Vec<Value>> = a_vals
            .iter()
            .enumerate()
            .map(|(k, a)| vec![Value::Int(k as i64), Value::Int(*a)])
            .collect();
        let t = TableDef::new(
            "R",
            Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
        )
        .with_rows(rows);
        ArrivalStream::from_scan(&t, &ScanSpec::with_rate(rate))
    }

    fn inner_rows(xs: &[i64]) -> Vec<Arc<Row>> {
        xs.iter()
            .map(|x| Row::shared(vec![Value::Int(*x)]))
            .collect()
    }

    #[test]
    fn joins_correctly_and_counts_probes() {
        // a values: 5 tuples, 3 distinct.
        let outer = outer_stream(&[1, 2, 1, 3, 2], 1000.0);
        let inner = inner_rows(&[1, 2, 9]);
        let run = index_join(&outer, &inner, &params());
        // Matches: a=1 ×2, a=2 ×2 → 4 results; a=3 misses.
        assert_eq!(run.results.len(), 4);
        // 3 distinct values probed exactly once each.
        assert_eq!(run.metrics.counter("index_probes"), 3);
    }

    #[test]
    fn serialization_creates_head_of_line_blocking() {
        // Two distinct misses then two hits; arrivals effectively instant.
        let outer = outer_stream(&[1, 2, 1, 2], 100_000.0);
        let inner = inner_rows(&[1, 2]);
        let run = index_join(&outer, &inner, &params());
        let s = run.metrics.series("results").unwrap();
        // First result after ~1s (first miss), second after ~2s, hits
        // immediately after — nothing before 1s despite instant arrivals.
        assert_eq!(s.value_at(secs(1) - 1), 0.0);
        assert!(s.value_at(secs(1) + 10) >= 1.0);
        assert_eq!(run.results.len(), 4);
        assert!(run.end_time >= secs(2));
    }

    #[test]
    fn hits_are_fast_once_cached() {
        let outer = outer_stream(&[7, 7, 7, 7], 100_000.0);
        let inner = inner_rows(&[7]);
        let run = index_join(&outer, &inner, &params());
        assert_eq!(run.metrics.counter("index_probes"), 1);
        // All 4 results well before a second lookup latency would allow.
        assert!(run.end_time < secs(1) + 10_000);
    }

    #[test]
    fn null_keys_never_probe() {
        let rows = vec![vec![Value::Int(0), Value::Null]];
        let t = TableDef::new(
            "R",
            Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
        )
        .with_rows(rows);
        let outer = ArrivalStream::from_scan(&t, &ScanSpec::with_rate(10.0));
        let run = index_join(&outer, &inner_rows(&[1]), &params());
        assert_eq!(run.results.len(), 0);
        assert_eq!(run.metrics.counter("index_probes"), 0);
    }
}
