//! Arrival streams: when each row of a scanned table reaches the query
//! engine, derived from the catalog's [`ScanSpec`]s (rate, start delay,
//! stall windows) — the same model the eddy's scan AMs use.

use std::sync::Arc;
use stems_catalog::{ScanSpec, TableDef};
use stems_sim::{burst_gap, secs_f, StallWindows, Time};
use stems_types::Row;

/// Rows of one table with their arrival times, in time order.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    items: Vec<(Time, Arc<Row>)>,
}

impl ArrivalStream {
    /// Derive arrivals from a table and its scan spec. Chunked specs
    /// deliver rows in bursts — every row of a chunk lands at the instant
    /// the chunk has accumulated, exactly the cadence the eddy's `ScanAm`
    /// uses — so baseline comparisons see the same arrival process.
    pub fn from_scan(table: &TableDef, spec: &ScanSpec) -> ArrivalStream {
        let gap = secs_f(1.0 / spec.rate_tps).max(1);
        let stalls = StallWindows::new(spec.stall_windows.clone());
        let mut items = Vec::with_capacity(table.num_rows());
        let mut t = spec.start_delay_us;
        for burst in table.rows().chunks(spec.chunk.max(1)) {
            t = stalls.next_available(t + burst_gap(gap, burst.len()));
            for row in burst {
                items.push((t, row.clone()));
            }
        }
        ArrivalStream { items }
    }

    /// Explicit arrivals (tests).
    pub fn from_items(mut items: Vec<(Time, Arc<Row>)>) -> ArrivalStream {
        items.sort_by_key(|(t, _)| *t);
        ArrivalStream { items }
    }

    pub fn items(&self) -> &[(Time, Arc<Row>)] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Time the last row arrives (0 for an empty stream).
    pub fn completion_time(&self) -> Time {
        self.items.last().map_or(0, |(t, _)| *t)
    }

    /// Merge two streams into `(time, which, row)` events, ties broken
    /// toward the first stream (deterministic).
    pub fn merge<'a>(
        a: &'a ArrivalStream,
        b: &'a ArrivalStream,
    ) -> Vec<(Time, bool, &'a Arc<Row>)> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.items.len() || j < b.items.len() {
            let take_a = match (a.items.get(i), b.items.get(j)) {
                (Some((ta, _)), Some((tb, _))) => ta <= tb,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_a {
                out.push((a.items[i].0, true, &a.items[i].1));
                i += 1;
            } else {
                out.push((b.items[j].0, false, &b.items[j].1));
                j += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{ColumnType, Schema, Value};

    fn table(n: i64) -> TableDef {
        TableDef::new("t", Schema::of(&[("k", ColumnType::Int)]))
            .with_rows((0..n).map(|k| vec![Value::Int(k)]).collect())
    }

    #[test]
    fn rate_spacing() {
        let s = ArrivalStream::from_scan(&table(3), &ScanSpec::with_rate(10.0));
        let times: Vec<Time> = s.items().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![100_000, 200_000, 300_000]);
        assert_eq!(s.completion_time(), 300_000);
    }

    #[test]
    fn stall_shifts_arrivals() {
        let spec = ScanSpec {
            rate_tps: 10.0,
            start_delay_us: 0,
            stall_windows: vec![(150_000, 400_000)],
            chunk: 1,
        };
        let s = ArrivalStream::from_scan(&table(3), &spec);
        let times: Vec<Time> = s.items().iter().map(|(t, _)| *t).collect();
        // Second row would land at 200k (inside stall) → pushed to 400k.
        assert_eq!(times, vec![100_000, 400_000, 500_000]);
    }

    #[test]
    fn chunked_arrivals_match_scan_am_cadence() {
        // 5 rows, chunk 2 at 10 tps: bursts land at 200ms, 400ms, and the
        // short tail one row-gap later — the ScanAm emission schedule.
        let s = ArrivalStream::from_scan(&table(5), &ScanSpec::with_rate(10.0).with_chunk(2));
        let times: Vec<Time> = s.items().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![200_000, 200_000, 400_000, 400_000, 500_000]);
        // A stall deferring a whole burst defers every row in it.
        let stalled = ScanSpec::with_rate(10.0)
            .with_chunk(2)
            .stalled_during(150_000, 300_000);
        let s = ArrivalStream::from_scan(&table(2), &stalled);
        let times: Vec<Time> = s.items().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![300_000, 300_000]);
    }

    #[test]
    fn merge_is_time_ordered_with_tie_break() {
        let a = ArrivalStream::from_scan(&table(2), &ScanSpec::with_rate(10.0));
        let b = ArrivalStream::from_scan(&table(2), &ScanSpec::with_rate(10.0));
        let merged = ArrivalStream::merge(&a, &b);
        let tags: Vec<bool> = merged.iter().map(|(_, is_a, _)| *is_a).collect();
        assert_eq!(tags, vec![true, false, true, false]);
        let times: Vec<Time> = merged.iter().map(|(t, _, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_stream() {
        let s = ArrivalStream::from_scan(&table(0), &ScanSpec::with_rate(10.0));
        assert!(s.is_empty());
        assert_eq!(s.completion_time(), 0);
    }
}
