//! Grace and hybrid-hash joins (blocking baselines).
//!
//! Paper §3.1 describes both as *emergent* from SteM routing; here they are
//! implemented directly as static plans for comparison:
//!
//! * Grace \[FKT86\]: build phase consumes both inputs into hash partitions;
//!   the probe phase then walks partition pairs with good locality (the
//!   per-probe cost is discounted), emitting all results in a tail burst.
//! * Hybrid-hash \[DKO+84\]: the first `mem_partitions` partitions keep an
//!   in-memory hash table and pipeline results during the build phase,
//!   SHJ-style; the rest behave like Grace.

use crate::{ArrivalStream, BaselineRun};
use std::hash::BuildHasher;
use std::sync::Arc;
use stems_storage::fxhash::{FxBuildHasher, FxHashMap};
use stems_storage::index_key;
use stems_types::{Row, TableIdx, Tuple, Value};

/// Grace/hybrid-hash parameters.
#[derive(Debug, Clone)]
pub struct GraceParams {
    pub left_instance: TableIdx,
    pub left_col: usize,
    pub right_instance: TableIdx,
    pub right_col: usize,
    /// Partition fan-out.
    pub partitions: usize,
    /// Partitions kept memory-resident (0 = pure Grace; = partitions ⇒
    /// plain pipelined hash join).
    pub mem_partitions: usize,
    /// Per-probe cost in the clustered probe phase, µs (discounted for
    /// locality relative to an SHJ op).
    pub probe_cost_us: u64,
    /// Per-op cost for the memory-resident pipelined partitions, µs.
    pub mem_op_cost_us: u64,
}

impl Default for GraceParams {
    fn default() -> Self {
        GraceParams {
            left_instance: TableIdx(0),
            left_col: 0,
            right_instance: TableIdx(1),
            right_col: 0,
            partitions: 8,
            mem_partitions: 0,
            probe_cost_us: 15,
            mem_op_cost_us: 50,
        }
    }
}

/// Run Grace / hybrid-hash over two scanned inputs.
pub fn grace_hash_join(
    left: &ArrivalStream,
    right: &ArrivalStream,
    params: &GraceParams,
) -> BaselineRun {
    assert!(params.partitions > 0);
    let hasher = FxBuildHasher::default();
    let part_of = |v: &Value| (hasher.hash_one(v) % params.partitions as u64) as usize;
    let mem_resident = |p: usize| p < params.mem_partitions.min(params.partitions);

    let mut run = BaselineRun::new();

    // Build phase: partition both inputs; memory-resident partitions
    // pipeline like an SHJ.
    let mut left_parts: Vec<Vec<Arc<Row>>> = vec![Vec::new(); params.partitions];
    let mut right_parts: Vec<Vec<Arc<Row>>> = vec![Vec::new(); params.partitions];
    let mut left_mem: FxHashMap<Value, Vec<Arc<Row>>> = FxHashMap::default();
    let mut right_mem: FxHashMap<Value, Vec<Arc<Row>>> = FxHashMap::default();

    for (t, is_left, row) in ArrivalStream::merge(left, right) {
        let col = if is_left {
            params.left_col
        } else {
            params.right_col
        };
        let Some(key) = row.get(col).and_then(index_key) else {
            continue;
        };
        let p = part_of(&key);
        if is_left {
            left_parts[p].push(row.clone());
        } else {
            right_parts[p].push(row.clone());
        }
        if mem_resident(p) {
            let (own, other, own_inst, other_inst) = if is_left {
                (
                    &mut left_mem,
                    &right_mem,
                    params.left_instance,
                    params.right_instance,
                )
            } else {
                (
                    &mut right_mem,
                    &left_mem,
                    params.right_instance,
                    params.left_instance,
                )
            };
            own.entry(key.clone()).or_default().push(row.clone());
            if let Some(matches) = other.get(&key) {
                for m in matches {
                    let result = Tuple::singleton(own_inst, row.clone())
                        .concat(&Tuple::singleton(other_inst, m.clone()));
                    run.emit(t + params.mem_op_cost_us, result);
                }
            }
        }
    }

    // Probe phase: walk the spilled partitions with clustered locality.
    let mut t = left.completion_time().max(right.completion_time());
    run.end_time = run.end_time.max(t);
    for p in 0..params.partitions {
        if mem_resident(p) {
            continue;
        }
        let mut ht: FxHashMap<Value, Vec<Arc<Row>>> = FxHashMap::default();
        for r in &right_parts[p] {
            if let Some(k) = r.get(params.right_col).and_then(index_key) {
                ht.entry(k).or_default().push(r.clone());
            }
        }
        for l in &left_parts[p] {
            t += params.probe_cost_us;
            if let Some(k) = l.get(params.left_col).and_then(index_key) {
                if let Some(matches) = ht.get(&k) {
                    for m in matches {
                        let result = Tuple::singleton(params.left_instance, l.clone())
                            .concat(&Tuple::singleton(params.right_instance, m.clone()));
                        run.emit(t, result);
                    }
                }
            }
        }
        run.observe("partitions_done", t, (p + 1) as f64);
    }
    run.end_time = run.end_time.max(t);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{ScanSpec, TableDef};
    use stems_types::{ColumnType, Schema};

    fn stream(keys: &[i64], rate: f64) -> ArrivalStream {
        let t = TableDef::new("t", Schema::of(&[("k", ColumnType::Int)]))
            .with_rows(keys.iter().map(|k| vec![Value::Int(*k)]).collect());
        ArrivalStream::from_scan(&t, &ScanSpec::with_rate(rate))
    }

    #[test]
    fn pure_grace_emits_nothing_until_inputs_finish() {
        let left = stream(&(0..50).collect::<Vec<_>>(), 100.0); // done at 0.5s
        let right = stream(&(0..50).collect::<Vec<_>>(), 50.0); // done at 1.0s
        let run = grace_hash_join(&left, &right, &GraceParams::default());
        assert_eq!(run.results.len(), 50);
        let s = run.metrics.series("results").unwrap();
        assert_eq!(
            s.value_at(right.completion_time() - 1),
            0.0,
            "Grace must block until both inputs complete"
        );
        assert!(run.end_time > right.completion_time());
    }

    #[test]
    fn hybrid_pipelines_memory_partitions() {
        let left = stream(&(0..64).collect::<Vec<_>>(), 100.0);
        let right = stream(&(0..64).collect::<Vec<_>>(), 50.0);
        let params = GraceParams {
            mem_partitions: 4,
            ..GraceParams::default()
        };
        let run = grace_hash_join(&left, &right, &params);
        assert_eq!(run.results.len(), 64);
        let s = run.metrics.series("results").unwrap();
        let early = s.value_at(right.completion_time() - 1);
        assert!(early > 0.0, "hybrid should pipeline some results early");
        assert!(early < 64.0, "but not all of them");
    }

    #[test]
    fn all_mem_partitions_is_a_pipelined_join() {
        let left = stream(&(0..10).collect::<Vec<_>>(), 100.0);
        let right = stream(&(0..10).collect::<Vec<_>>(), 100.0);
        let params = GraceParams {
            partitions: 4,
            mem_partitions: 4,
            ..GraceParams::default()
        };
        let run = grace_hash_join(&left, &right, &params);
        assert_eq!(run.results.len(), 10);
        let s = run.metrics.series("results").unwrap();
        // Everything pipelines: last result lands one op after the last
        // arrival, with no tail probe phase.
        assert_eq!(
            s.value_at(right.completion_time() + params.mem_op_cost_us),
            10.0
        );
    }

    #[test]
    fn no_duplicate_or_missing_results() {
        let left = stream(&[1, 2, 3, 3, 4], 100.0);
        let right = stream(&[3, 3, 5, 1], 100.0);
        for mem in [0, 2, 8] {
            let params = GraceParams {
                mem_partitions: mem,
                ..GraceParams::default()
            };
            let run = grace_hash_join(&left, &right, &params);
            // 1×1 + 3·(2 left copies? no: left has 3,3 → 2 rows; right 3,3 →
            // 2 rows ⇒ 4) = 5 total.
            assert_eq!(run.results.len(), 5, "mem={mem}");
        }
    }
}
