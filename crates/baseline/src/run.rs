//! Result accumulator shared by all baseline operators.

use stems_sim::{Metrics, Time};
use stems_types::Tuple;

/// The outcome of a baseline simulation, shape-compatible with
/// `stems_core::Report`: exact result tuples plus the figure series.
#[derive(Debug, Default)]
pub struct BaselineRun {
    pub results: Vec<Tuple>,
    pub metrics: Metrics,
    pub end_time: Time,
}

impl BaselineRun {
    pub fn new() -> BaselineRun {
        BaselineRun::default()
    }

    /// Record one result tuple at virtual time `t`.
    pub fn emit(&mut self, t: Time, tuple: Tuple) {
        self.metrics.bump("results", t, 1);
        self.end_time = self.end_time.max(t);
        self.results.push(tuple);
    }

    /// Record a non-result event (probe issued, memory sample...).
    pub fn note(&mut self, name: &str, t: Time, delta: u64) {
        self.metrics.bump(name, t, delta);
        self.end_time = self.end_time.max(t);
    }

    /// Record a raw observation (memory bytes etc.).
    pub fn observe(&mut self, name: &str, t: Time, v: f64) {
        self.metrics.observe(name, t, v);
        self.end_time = self.end_time.max(t);
    }

    /// Canonical sorted value rows, for comparisons in tests.
    pub fn canonical_values(&self) -> Vec<Vec<stems_types::Value>> {
        let mut rows: Vec<Vec<stems_types::Value>> = self
            .results
            .iter()
            .map(|t| {
                t.components()
                    .iter()
                    .flat_map(|c| c.row.values().iter().cloned())
                    .collect()
            })
            .collect();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.len().cmp(&b.len())
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{TableIdx, Value};

    #[test]
    fn emit_tracks_series_and_end_time() {
        let mut run = BaselineRun::new();
        run.emit(100, Tuple::singleton_of(TableIdx(0), vec![Value::Int(1)]));
        run.emit(250, Tuple::singleton_of(TableIdx(0), vec![Value::Int(2)]));
        run.note("index_probes", 400, 1);
        assert_eq!(run.results.len(), 2);
        assert_eq!(run.end_time, 400);
        assert_eq!(run.metrics.counter("results"), 2);
        let s = run.metrics.series("results").unwrap();
        assert_eq!(s.value_at(100), 1.0);
        assert_eq!(s.value_at(300), 2.0);
    }

    #[test]
    fn canonical_sorted() {
        let mut run = BaselineRun::new();
        run.emit(10, Tuple::singleton_of(TableIdx(0), vec![Value::Int(5)]));
        run.emit(20, Tuple::singleton_of(TableIdx(0), vec![Value::Int(1)]));
        assert_eq!(
            run.canonical_values(),
            vec![vec![Value::Int(1)], vec![Value::Int(5)]]
        );
    }
}
