#!/usr/bin/env python3
"""Bench-regression gate for the committed BENCH_*.json baselines.

Usage:
    python3 tools/bench_check.py COMMITTED:FRESH [COMMITTED:FRESH ...]

Each argument pairs a committed baseline (e.g. BENCH_2.json) with a
freshly generated output of the same benchmark binary. For every file
(committed *and* fresh) the gate enforces, beyond well-formed JSON:

  1. every series carries a ``result_hash`` field (the benches' sorted
     multiset hash of the canonical query results);
  2. **cross-series result equality** — within one workload, every series
     (scalar / batched / chunked / fused / sharded) must report the same
     ``result_hash``: the perf variants claim observational equivalence,
     and a silent result drift is a correctness regression even when the
     JSON parses fine;
  3. the fresh run exposes exactly the committed series labels (a renamed
     or dropped series would otherwise rot the baseline unnoticed);
  4. when the fresh run used the committed row count (CI runs the full
     rows with STEMS_BENCH_RUNS=1), its hashes must equal the committed
     ones — the cross-commit result-regression check.

Timing fields are deliberately *not* gated: wall-clock numbers are noisy
on shared runners; result hashes are not.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"bench_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        fail(f"{path}: file not found")
    except json.JSONDecodeError as e:
        fail(f"{path}: malformed JSON ({e})")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    return doc


def workloads(path: str, doc: dict) -> "dict[str, list]":
    """Normalize both schemas to {workload_name: [series entries]}."""
    if "workloads" in doc:
        out = {}
        for w in doc["workloads"]:
            name = w.get("name")
            if not name or "series" not in w:
                fail(f"{path}: workload missing name/series")
            out[name] = w["series"]
        return out
    if "series" in doc:
        return {"": doc["series"]}
    fail(f"{path}: neither 'series' nor 'workloads' present")


def series_hashes(path: str, groups: "dict[str, list]") -> "dict[tuple, str]":
    """Per-(workload, label) result hash, with cross-series equality
    enforced within each workload."""
    hashes = {}
    for wname, series in groups.items():
        if not series:
            fail(f"{path}: workload {wname!r} has no series")
        seen = {}
        for entry in series:
            label = entry.get("label")
            if not label:
                fail(f"{path}: series entry missing 'label' in {wname!r}")
            h = entry.get("result_hash")
            if not h:
                fail(f"{path}: series {wname!r}/{label!r} missing 'result_hash'")
            seen[label] = h
            hashes[(wname, label)] = h
        distinct = set(seen.values())
        if len(distinct) != 1:
            # Name the series that drifted: the majority hash is the
            # reference, minority series are the suspects. With no clear
            # majority (e.g. two series disagreeing 1-1) blame would be
            # arbitrary, so just list everything.
            counts = {}
            for h in seen.values():
                counts[h] = counts.get(h, 0) + 1
            majority = max(counts, key=lambda h: counts[h])
            everything = ", ".join(f"{l}={h}" for l, h in sorted(seen.items()))
            if list(counts.values()).count(counts[majority]) > 1:
                fail(
                    f"{path}: cross-series result inequality in workload {wname!r} "
                    f"(no majority hash to blame): {everything}"
                )
            drifted = sorted(l for l, h in seen.items() if h != majority)
            fail(
                f"{path}: cross-series result inequality in workload {wname!r}: "
                f"series {', '.join(drifted)} drifted from the majority hash "
                f"{majority} ({everything})"
            )
    return hashes


def context_notes(committed_path: str, fresh_path: str, committed: dict, fresh: dict) -> None:
    """Hardware/runtime context fields (``cores``, ``workers``): reported
    when they differ, never gated — a baseline generated on a different
    machine or worker budget is still a valid *result* baseline, the
    context only matters for reading the (ungated) timing numbers."""
    for field in ("cores", "workers"):
        c, f = committed.get(field), fresh.get(field)
        if c is not None and f is not None and c != f:
            print(
                f"bench_check: note: {fresh_path} ran with {field}={f}, "
                f"{committed_path} was recorded with {field}={c} "
                "(informational — timing fields are not gated)"
            )


def check_pair(committed_path: str, fresh_path: str) -> None:
    committed = load(committed_path)
    fresh = load(fresh_path)
    context_notes(committed_path, fresh_path, committed, fresh)
    committed_hashes = series_hashes(committed_path, workloads(committed_path, committed))
    fresh_hashes = series_hashes(fresh_path, workloads(fresh_path, fresh))

    missing = sorted(set(committed_hashes) - set(fresh_hashes))
    if missing:
        fail(
            f"{fresh_path}: missing series present in {committed_path}: "
            + ", ".join(f"{w or '-'}/{l}" for w, l in missing)
        )

    committed_rows = committed.get("rows")
    fresh_rows = fresh.get("rows")
    if committed_rows is None:
        fail(f"{committed_path}: missing 'rows' field")
    if fresh_rows is None:
        # A fresh output without 'rows' would silently disable the
        # cross-commit comparison below forever — refuse instead.
        fail(f"{fresh_path}: missing 'rows' field")
    if fresh_rows == committed_rows:
        for key, want in committed_hashes.items():
            got = fresh_hashes[key]
            if got != want:
                wname, label = key
                fail(
                    f"{fresh_path}: result hash of {wname or '-'}/{label} is {got}, "
                    f"committed {committed_path} has {want} — the benchmark's query "
                    "results changed"
                )
        print(
            f"bench_check: OK {fresh_path} vs {committed_path} "
            f"({len(committed_hashes)} series, hashes match committed baseline)"
        )
    else:
        print(
            f"bench_check: OK {fresh_path} vs {committed_path} "
            f"({len(fresh_hashes)} series internally consistent; rows "
            f"{fresh_rows} != committed {committed_rows}, cross-commit hash "
            "comparison skipped)"
        )


def main(argv: "list[str]") -> None:
    if not argv:
        fail("usage: bench_check.py COMMITTED:FRESH [COMMITTED:FRESH ...]")
    for arg in argv:
        if ":" not in arg:
            fail(f"argument {arg!r} is not of the form COMMITTED:FRESH")
        committed, fresh = arg.split(":", 1)
        check_pair(committed, fresh)


if __name__ == "__main__":
    main(sys.argv[1:])
