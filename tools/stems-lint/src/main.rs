//! `stems-lint` — source-level invariants the compiler can't enforce.
//!
//! Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p stems-lint              # lint the tree (exit 1 on findings)
//! cargo run -p stems-lint -- --self-test   # prove the rules still bite
//! ```
//!
//! Rule catalog (see `fixtures/` for a negative example of each):
//!
//! | id | invariant |
//! |----|-----------|
//! | `unsafe-safety` | every `unsafe` carries a `// SAFETY:` argument |
//! | `std-sync-primitive` | no `std::sync` scheduling primitives outside `stems_core::sync` / `stems-check` |
//! | `lock-unwrap` | no `.lock().unwrap()` / `.lock().expect(..)` — poison policy goes through `lock_ok` / `lock_recover` |
//! | `std-thread` | no thread spawning outside `runtime.rs` / `stems-check` |
//! | `wall-clock` | no `Instant::now` / `SystemTime` outside `crates/bench` (virtual-time discipline) |
//!
//! The scanner is token-level, not syntactic: comments, strings, and
//! char literals are stripped before matching, so banned names in docs
//! or string literals never fire. `--self-test` runs every fixture file
//! through the same engine and fails if any fixture stops producing
//! exactly its expected finding — CI runs it on every leg so a silently
//! dead rule fails the build.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Permanent, reviewed exceptions: (rule id, repo-relative path, why).
/// Deliberately tiny, and **no `crates/core` entries** — the concurrent
/// crate has zero exemptions.
const ALLOWLIST: &[(&str, &str, &str)] = &[(
    "std-thread",
    "crates/storage/src/store.rs",
    "test-only cross-thread Arc-sharing smoke test; no production spawn",
)];

/// Banned `std::sync` items outside the shim. `Arc`, `OnceLock`,
/// `LockResult`, `PoisonError` stay allowed everywhere: they carry no
/// scheduling behaviour worth modelling.
const SYNC_PRIMITIVES: &[&str] = &[
    "Mutex",
    "MutexGuard",
    "Condvar",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Barrier",
    "mpsc",
    "atomic",
    "Once",
];

#[derive(Debug)]
struct Finding {
    rule: &'static str,
    line: usize,
    message: String,
}

fn main() {
    let self_test = std::env::args().any(|a| a == "--self-test");
    let root = workspace_root();
    let status = if self_test {
        run_self_test(&root)
    } else {
        run_lint(&root)
    };
    std::process::exit(status);
}

fn workspace_root() -> PathBuf {
    // tools/stems-lint -> tools -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("stems-lint lives two levels below the workspace root")
        .to_path_buf()
}

// ---------------------------------------------------------------------
// Tree walk
// ---------------------------------------------------------------------

fn run_lint(root: &Path) -> i32 {
    let mut files = Vec::new();
    for top in ["crates", "src", "tools"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings_total = 0usize;
    let mut out = String::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        for f in lint_source(&rel, &text) {
            findings_total += 1;
            let _ = writeln!(out, "{rel}:{}: [{}] {}", f.line, f.rule, f.message);
        }
    }
    if findings_total == 0 {
        println!(
            "stems-lint: {} files clean ({} allowlist entries)",
            files.len(),
            ALLOWLIST.len()
        );
        0
    } else {
        eprint!("{out}");
        eprintln!("stems-lint: {findings_total} finding(s)");
        1
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` are deliberate violations; `target/` is build
            // output.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------

/// Lint one file's source under its repo-relative `path` (the path
/// drives scoping/exemptions — fixtures pass virtual paths).
fn lint_source(path: &str, text: &str) -> Vec<Finding> {
    let original: Vec<&str> = text.lines().collect();
    let mut stripper = Stripper::default();
    let code: Vec<String> = original.iter().map(|l| stripper.strip_line(l)).collect();

    let in_check = path.starts_with("crates/check/");
    let in_shim = path == "crates/core/src/sync.rs";
    let in_bench = path.starts_with("crates/bench/");
    let in_runtime = path == "crates/core/src/runtime.rs";

    let mut findings = Vec::new();
    let mut sync_use_block = false;
    for (idx, code_line) in code.iter().enumerate() {
        let lineno = idx + 1;

        // unsafe-safety — everywhere, no exemptions.
        if contains_word(code_line, "unsafe") && !has_safety_comment(&original, idx) {
            findings.push(Finding {
                rule: "unsafe-safety",
                line: lineno,
                message: "`unsafe` without a `// SAFETY:` argument in the preceding comment".into(),
            });
        }

        // std-sync-primitive — the shim funnel.
        if !in_check && !in_shim {
            if let Some(name) = std_sync_primitive(code_line, &mut sync_use_block) {
                findings.push(Finding {
                    rule: "std-sync-primitive",
                    line: lineno,
                    message: format!(
                        "`std::sync::{name}` outside the `stems_core::sync` shim — import it from `crate::sync`"
                    ),
                });
            }
        }

        // lock-unwrap — the poison policy funnel.
        if !in_check
            && (code_line.contains(".lock().unwrap()") || code_line.contains(".lock().expect("))
        {
            findings.push(Finding {
                rule: "lock-unwrap",
                line: lineno,
                message: "poison-blind lock acquisition — use `lock_ok` / `lock_recover` from `crate::sync`"
                    .into(),
            });
        }

        // std-thread — spawning is the runtime's business.
        if !in_check && !in_runtime {
            for pat in [
                "std::thread::spawn",
                "std::thread::scope",
                "std::thread::Builder",
            ] {
                if code_line.contains(pat) && !allowlisted("std-thread", path) {
                    findings.push(Finding {
                        rule: "std-thread",
                        line: lineno,
                        message: format!(
                            "`{pat}` outside `runtime.rs` — go through the worker pool"
                        ),
                    });
                }
            }
        }

        // wall-clock — the virtual-time discipline (bench measures real
        // time by design).
        if !in_bench {
            for pat in ["Instant::now", "SystemTime"] {
                if code_line.contains(pat) {
                    findings.push(Finding {
                        rule: "wall-clock",
                        line: lineno,
                        message: format!(
                            "`{pat}` in a virtual-time crate — time comes from the simulation clock"
                        ),
                    });
                }
            }
        }
    }
    findings
}

fn allowlisted(rule: &str, path: &str) -> bool {
    ALLOWLIST.iter().any(|(r, p, _)| *r == rule && *p == path)
}

/// Word-boundary substring search (so `unsafe_op_in_unsafe_fn` in an
/// attribute does not count as the keyword).
fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Look upward from the `unsafe` line through its contiguous run of
/// comment/attribute lines for a `SAFETY:` marker (same line counts
/// too — the stripper removed the comment from the code text, not the
/// original).
fn has_safety_comment(original: &[&str], idx: usize) -> bool {
    if original[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    let mut budget = 60; // generous: the runtime's argument is long
    while i > 0 && budget > 0 {
        i -= 1;
        budget -= 1;
        let t = original[i].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else if t.starts_with("#[") || t.is_empty() {
            // attributes/blank between the argument and the block are ok
        } else {
            return false;
        }
    }
    false
}

/// Detect a banned `std::sync::<primitive>` mention, including the
/// multi-line `use std::sync::{ ... }` form (tracked via
/// `sync_use_block`). Returns the offending item name.
fn std_sync_primitive(code_line: &str, sync_use_block: &mut bool) -> Option<&'static str> {
    if *sync_use_block {
        if let Some(name) = SYNC_PRIMITIVES
            .iter()
            .find(|name| contains_word(code_line, name))
        {
            if code_line.contains('}') {
                *sync_use_block = false;
            }
            return Some(name);
        }
        if code_line.contains('}') {
            *sync_use_block = false;
        }
        return None;
    }
    let mut from = 0;
    while let Some(pos) = code_line[from..].find("std::sync::") {
        let rest = &code_line[from + pos + "std::sync::".len()..];
        let rest = rest.trim_start();
        if let Some(inner) = rest.strip_prefix('{') {
            // Single-line list: check it here; multi-line: arm the
            // block tracker for the following lines.
            if inner.contains('}') {
                let list = &inner[..inner.find('}').unwrap()];
                if let Some(name) = SYNC_PRIMITIVES.iter().find(|n| contains_word(list, n)) {
                    return Some(name);
                }
            } else {
                if let Some(name) = SYNC_PRIMITIVES.iter().find(|n| contains_word(inner, n)) {
                    return Some(name);
                }
                *sync_use_block = true;
            }
        } else {
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if let Some(name) = SYNC_PRIMITIVES.iter().find(|n| **n == ident) {
                return Some(name);
            }
        }
        from += pos + "std::sync::".len();
    }
    None
}

// ---------------------------------------------------------------------
// Comment/string stripping
// ---------------------------------------------------------------------

/// Line-by-line comment, string, and char-literal stripper. Carries
/// block-comment depth and (raw-)string state across lines; stripped
/// regions are blanked so column positions stay roughly stable.
#[derive(Default)]
struct Stripper {
    block_comment_depth: usize,
    in_string: bool,
    /// `Some(n)` while inside a raw string closed by `"` + n `#`s.
    raw_string_hashes: Option<usize>,
}

impl Stripper {
    fn strip_line(&mut self, line: &str) -> String {
        let chars: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            if let Some(hashes) = self.raw_string_hashes {
                if chars[i] == '"'
                    && chars[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|c| **c == '#')
                        .count()
                        == hashes
                {
                    self.raw_string_hashes = None;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            if self.in_string {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        self.in_string = false;
                        i += 1;
                    }
                    _ => i += 1,
                }
                out.push(' ');
                continue;
            }
            if self.block_comment_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.block_comment_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    self.block_comment_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => break, // line comment
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.block_comment_depth += 1;
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    self.in_string = true;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'b') || chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let hashes = chars[j..].iter().take_while(|c| **c == '#').count();
                    j += hashes;
                    // chars[j] is the opening quote
                    self.raw_string_hashes = Some(hashes);
                    out.push(' ');
                    i = j + 1;
                }
                '\'' if is_char_literal(&chars, i) => {
                    // skip 'x' or '\x' entirely
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        j += 1;
                    }
                    j += 1; // the payload char
                    debug_assert_eq!(chars.get(j), Some(&'\''));
                    out.push(' ');
                    i = j + 1;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

/// `r"..."` / `r#"..."#` / `br"..."` — only when `r`/`b` is not part of
/// a longer identifier.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    } else if j == i {
        return false; // plain 'b' needs 'r' or '"' next; b"..." handled by '"' arm next round
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"') && j > i
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 3) == Some(&'\'') || chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

// ---------------------------------------------------------------------
// Self-test over fixtures
// ---------------------------------------------------------------------

/// Every fixture declares what it expects in `//~` headers:
///
/// ```text
/// //~ rule: std-thread        (or `none` for a clean fixture)
/// //~ path: crates/core/src/engine.rs
/// ```
///
/// The fixture is linted under its virtual path and must fire exactly
/// the declared rule set — a rule that stops biting, or a scanner
/// regression that adds noise, fails the self-test.
fn run_self_test(root: &Path) -> i32 {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut files = Vec::new();
    collect_fixtures(&fixtures, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!(
            "stems-lint --self-test: no fixtures found at {}",
            fixtures.display()
        );
        return 1;
    }
    let _ = root;
    let mut failed = 0usize;
    for file in &files {
        let name = file
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("self-test: {name}: unreadable: {e}");
                failed += 1;
                continue;
            }
        };
        let mut expect: Vec<String> = Vec::new();
        let mut vpath = String::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("//~ rule:") {
                let r = rest.trim().to_string();
                if r != "none" {
                    expect.push(r);
                }
            } else if let Some(rest) = line.strip_prefix("//~ path:") {
                vpath = rest.trim().to_string();
            }
        }
        if vpath.is_empty() {
            eprintln!("self-test: {name}: missing `//~ path:` header");
            failed += 1;
            continue;
        }
        let mut fired: Vec<String> = lint_source(&vpath, &text)
            .into_iter()
            .map(|f| f.rule.to_string())
            .collect();
        fired.sort();
        fired.dedup();
        expect.sort();
        expect.dedup();
        if fired == expect {
            println!(
                "self-test: {name}: ok ({})",
                if expect.is_empty() {
                    "clean".into()
                } else {
                    expect.join(", ")
                }
            );
        } else {
            eprintln!("self-test: {name}: expected {expect:?}, lint fired {fired:?}");
            failed += 1;
        }
    }
    if failed == 0 {
        println!("stems-lint --self-test: {} fixtures ok", files.len());
        0
    } else {
        eprintln!("stems-lint --self-test: {failed} fixture(s) failed");
        1
    }
}

fn collect_fixtures(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
