//~ rule: none
//~ path: crates/storage/src/store.rs
// This path carries the one reviewed std-thread allowlist entry: a
// test-only cross-thread sharing smoke test.

#[cfg(test)]
fn smoke() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
