//~ rule: std-sync-primitive
//~ path: crates/core/src/fake.rs
// A raw std::sync primitive import outside the shim, in the multi-line
// rustfmt shape to exercise the use-block tracker.

use std::sync::{
    Arc,
    Mutex,
};

pub fn shared_counter() -> Arc<Mutex<u64>> {
    Arc::new(Mutex::new(0))
}
