//~ rule: wall-clock
//~ path: crates/core/src/engine.rs
// Wall-clock reads in a virtual-time crate make runs nondeterministic.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
