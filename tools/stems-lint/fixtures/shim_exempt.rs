//~ rule: none
//~ path: crates/core/src/sync.rs
// The shim itself is the one place allowed to name std::sync
// primitives — that is its whole job.

pub use std::sync::{Condvar, Mutex, MutexGuard};
pub use std::sync::atomic;
