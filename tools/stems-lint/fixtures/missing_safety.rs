//~ rule: unsafe-safety
//~ path: crates/core/src/fake.rs
// An `unsafe` block with no SAFETY argument anywhere above it.

pub fn first_byte(xs: &[u8]) -> u8 {
    // grabs the first element without a bounds check
    unsafe { *xs.get_unchecked(0) }
}
