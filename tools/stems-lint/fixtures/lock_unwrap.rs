//~ rule: lock-unwrap
//~ path: crates/core/src/fake.rs
// Poison-blind lock acquisition: panicking here turns one worker panic
// into a cascade. Policy lives in `lock_ok` / `lock_recover`.

use crate::sync::Mutex;

pub fn bump(counter: &Mutex<u64>) {
    *counter.lock().unwrap() += 1;
}
