//~ rule: none
//~ path: crates/core/src/fake.rs
// Everything in here is fine and must NOT fire: banned names confined
// to comments and string literals, allowed std::sync items, an unsafe
// block with a proper SAFETY argument.

use crate::sync::{lock_ok, Mutex};
use std::sync::{Arc, OnceLock};

// A comment may talk about std::sync::Mutex, .lock().unwrap(), or
// std::thread::spawn, or even Instant::now — none of that is code.

pub fn doc_strings() -> (&'static str, &'static str) {
    (
        "std::sync::Condvar and .lock().unwrap() in a string are fine",
        r#"so is std::thread::spawn or SystemTime in a raw string"#,
    )
}

pub fn first_byte(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty on the line above, so index 0 is in
    // bounds for the lifetime of `xs`.
    unsafe { *xs.get_unchecked(0) }
}

pub fn shared(counter: &Mutex<u64>) -> u64 {
    let cell: &'static OnceLock<u64> = Box::leak(Box::new(OnceLock::new()));
    let _arc = Arc::new(());
    let _ = cell;
    *lock_ok(counter)
}
