//~ rule: std-thread
//~ path: crates/core/src/engine.rs
// Direct thread spawning outside runtime.rs bypasses the worker pool
// (and the model checker's thread shim).

pub fn fire_and_forget() {
    std::thread::spawn(|| {
        // ...
    });
}
