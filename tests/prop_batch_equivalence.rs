//! Batch/scalar equivalence: the batched routing pipeline must be
//! observationally equivalent to tuple-at-a-time routing.
//!
//! The batched engine groups same-candidate-set tuples behind one policy
//! decision; the Table 2 constraints are still checked per tuple. For
//! randomized 2–4 table select-project-join queries across topologies,
//! policies and store backends, running the same query at batch sizes
//! {1, 64, 256} must emit exactly the same result multiset, produce zero
//! constraint violations under `check_constraints: true`, and agree with
//! the reference nested-loop executor.
//!
//! Scan ingestion is chunked too (`ScanSpec::chunk`): randomized cases
//! also vary the chunk size over {1, 7, 64, 256}, and a dedicated suite
//! proves chunked ingestion reproduces the scalar engine's result multiset
//! exactly — with chunk = 1 bit-identical (same ordered results, same
//! event count, same virtual end time) to the row-at-a-time engine.

use stems::catalog::{reference, Catalog, IndexSpec, QuerySpec, ScanSpec, TableInstance};
use stems::core::plan::PlanOptions;
use stems::core::StemOptions;
use stems::prelude::*;
use stems::sim::SimRng;
use stems::storage::StoreKind;

/// Scan chunk sizes the suites sweep (1 = the scalar row-at-a-time scan).
const CHUNKS: [usize; 4] = [1, 7, 64, 256];

/// SteM shard fan-outs the shard-invariance suite sweeps (1 = the
/// unsharded engine; 7 exercises uneven key → shard distributions).
const SHARDS: [usize; 4] = [1, 2, 4, 7];

struct Case {
    rows: Vec<Vec<(i64, i64)>>,
    topology: u8,
    policy: RoutingPolicyKind,
    store: StoreKind,
    seed: u64,
    extra_index: Vec<bool>,
    selection_lt: Option<i64>,
    chunk: usize,
}

fn gen_case(rng: &mut SimRng) -> Case {
    let n_tables = 2 + rng.below(3) as usize; // 2..=4
    Case {
        rows: (0..n_tables)
            .map(|_| {
                let n = rng.below(16) as usize;
                (0..n)
                    .map(|i| (i as i64, rng.range_inclusive(0, 5)))
                    .collect()
            })
            .collect(),
        chunk: CHUNKS[rng.below(CHUNKS.len() as u64) as usize],
        topology: rng.below(3) as u8,
        policy: match rng.below(3) {
            0 => RoutingPolicyKind::Fixed { probe_order: None },
            1 => RoutingPolicyKind::Lottery,
            _ => RoutingPolicyKind::BenefitCost {
                epsilon: 0.25,
                drop_rate: 1.0,
            },
        },
        store: match rng.below(3) {
            0 => StoreKind::List,
            1 => StoreKind::Hash,
            _ => StoreKind::Adaptive { threshold: 4 },
        },
        seed: rng.next_u64(),
        extra_index: (0..n_tables).map(|_| rng.chance(0.4)).collect(),
        selection_lt: if rng.chance(0.5) {
            Some(rng.range_inclusive(0, 5))
        } else {
            None
        },
    }
}

fn build_case(case: &Case) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    let mut sources = Vec::new();
    for (i, rows) in case.rows.iter().enumerate() {
        let def = TableDef::new(
            &format!("t{i}"),
            Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
        )
        .with_rows(
            rows.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
                .collect(),
        );
        let id = catalog.add_table(def).expect("table");
        catalog
            .add_scan(id, ScanSpec::with_rate(500.0).with_chunk(case.chunk))
            .expect("scan");
        if case.extra_index[i] {
            catalog
                .add_index(id, IndexSpec::new(vec![1], 5_000))
                .expect("index");
        }
        sources.push(id);
    }
    let n = sources.len();
    let mut preds = Vec::new();
    let push_join = |a: usize, b: usize, preds: &mut Vec<Predicate>| {
        preds.push(Predicate::join(
            PredId(preds.len() as u16),
            ColRef::new(TableIdx(a as u8), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(b as u8), 1),
        ));
    };
    match case.topology {
        0 => {
            for i in 0..n - 1 {
                push_join(i, i + 1, &mut preds);
            }
        }
        1 => {
            for i in 1..n {
                push_join(0, i, &mut preds);
            }
        }
        _ => {
            for i in 0..n - 1 {
                push_join(i, i + 1, &mut preds);
            }
            if n > 2 {
                push_join(0, n - 1, &mut preds);
            }
        }
    }
    if let Some(c) = case.selection_lt {
        preds.push(Predicate::selection(
            PredId(preds.len() as u16),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Lt,
            Value::Int(c),
        ));
    }
    let query = QuerySpec::new(
        &catalog,
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| TableInstance {
                source: *s,
                alias: format!("t{i}"),
            })
            .collect(),
        preds,
        None,
    )
    .expect("query");
    (catalog, query)
}

/// Run at the ambient shard count (the `STEMS_NUM_SHARDS` CI matrix leg),
/// so every existing suite doubles as sharded-engine coverage.
fn run_at(case: &Case, catalog: &Catalog, query: &QuerySpec, batch_size: usize) -> Report {
    run_at_shards(
        case,
        catalog,
        query,
        batch_size,
        ExecConfig::default().num_shards,
    )
}

fn run_at_shards(
    case: &Case,
    catalog: &Catalog,
    query: &QuerySpec,
    batch_size: usize,
    num_shards: usize,
) -> Report {
    let config = ExecConfig {
        policy: case.policy.clone(),
        seed: case.seed,
        batch_size,
        num_shards,
        plan: PlanOptions {
            default_stem: StemOptions {
                store: case.store.clone(),
                ..StemOptions::default()
            },
            ..PlanOptions::default()
        },
        check_constraints: true,
        max_events: 20_000_000,
        ..ExecConfig::default()
    };
    EddyExecutor::build(catalog, query, config)
        .expect("plan")
        .run()
}

/// The batched engine emits exactly the scalar engine's result multiset.
#[test]
fn batched_routing_matches_scalar_multiset() {
    for i in 0..48u64 {
        let mut rng = SimRng::new(0xBA7C4E ^ i);
        let case = gen_case(&mut rng);
        let (catalog, query) = build_case(&case);
        let expected =
            reference::canonical(&catalog, &query, &reference::execute(&catalog, &query));

        let scalar = run_at(&case, &catalog, &query, 1);
        assert!(
            scalar.violations.is_empty(),
            "case {i} scalar violations: {:?}",
            scalar.violations
        );
        let scalar_canon = scalar.canonical(&catalog, &query);
        assert_eq!(scalar_canon, expected, "case {i}: scalar vs reference");

        for batch_size in [64usize, 256] {
            let batched = run_at(&case, &catalog, &query, batch_size);
            assert!(
                batched.violations.is_empty(),
                "case {i} batch {batch_size} violations: {:?}",
                batched.violations
            );
            // Canonical form is the sorted projected multiset: equality
            // means no missing results, no duplicates, no extras.
            assert_eq!(
                batched.canonical(&catalog, &query),
                scalar_canon,
                "case {i}: batch {batch_size} vs scalar ({} vs {} raw results)",
                batched.results.len(),
                scalar.results.len()
            );
        }
    }
}

/// Chunked scan ingestion reproduces the scalar engine's result multiset
/// exactly: the same randomized query, rebuilt with every chunk size in
/// {1, 7, 64, 256}, emits the reference multiset with zero constraint
/// violations — chunking only reshapes arrival timing, never results.
#[test]
fn chunked_ingestion_matches_scalar_multiset() {
    for i in 0..24u64 {
        let mut rng = SimRng::new(0xC4_0C ^ i);
        let mut case = gen_case(&mut rng);
        case.chunk = 1;
        let (catalog, query) = build_case(&case);
        let expected =
            reference::canonical(&catalog, &query, &reference::execute(&catalog, &query));
        let scalar = run_at(&case, &catalog, &query, 1);
        assert!(
            scalar.violations.is_empty(),
            "case {i} scalar violations: {:?}",
            scalar.violations
        );
        assert_eq!(
            scalar.canonical(&catalog, &query),
            expected,
            "case {i}: scalar vs reference"
        );
        for chunk in CHUNKS {
            case.chunk = chunk;
            let (catalog, query) = build_case(&case);
            // batch_size 256 so no chunk in the sweep is clamped.
            let chunked = run_at(&case, &catalog, &query, 256);
            assert!(
                chunked.violations.is_empty(),
                "case {i} chunk {chunk} violations: {:?}",
                chunked.violations
            );
            assert_eq!(
                chunked.canonical(&catalog, &query),
                expected,
                "case {i}: chunk {chunk} vs scalar multiset"
            );
        }
    }
}

/// Chunk = 1 is bit-identical to the row-at-a-time scan. The engine clamps
/// every scan's chunk to `batch_size`, so at `batch_size: 1` a catalog
/// declaring *any* chunk size must reproduce the scalar engine exactly:
/// same *ordered* result vector, same event count, same virtual end time.
/// This pins the chunked emission arithmetic at c = 1 (accumulation gap,
/// tail chunk, EOT cadence) to the scalar engine's, whatever chunk was
/// declared. (The `ScanAm` unit tests additionally pin chunk-1 emission to
/// the exact virtual timestamps of the pre-chunking engine.)
#[test]
fn chunk_one_is_bit_identical_to_row_at_a_time() {
    for i in 0..12u64 {
        let mut rng = SimRng::new(0xB17 ^ i);
        let mut case = gen_case(&mut rng);
        case.chunk = 1;
        let (catalog, query) = build_case(&case);
        let baseline = run_at(&case, &catalog, &query, 1);
        for chunk in [7usize, 64, 256] {
            case.chunk = chunk;
            let (catalog, query) = build_case(&case);
            let clamped = run_at(&case, &catalog, &query, 1);
            assert_eq!(clamped.results, baseline.results, "case {i} chunk {chunk}");
            assert_eq!(clamped.events, baseline.events, "case {i} chunk {chunk}");
            assert_eq!(
                clamped.end_time, baseline.end_time,
                "case {i} chunk {chunk}"
            );
        }
    }
}

/// Batching must actually amortize: under the deterministic fixed policy
/// (where per-tuple routing decisions are identical at every batch size),
/// the batched run may never schedule *more* events than the scalar run —
/// grouped envelopes strictly reduce start/complete pairs.
#[test]
fn batching_never_schedules_more_events_than_scalar() {
    let mut amortized_somewhere = false;
    for i in 0..16u64 {
        let mut rng = SimRng::new(0x0DD ^ i);
        let mut case = gen_case(&mut rng);
        case.policy = RoutingPolicyKind::Fixed { probe_order: None };
        let (catalog, query) = build_case(&case);
        let scalar = run_at(&case, &catalog, &query, 1);
        let batched = run_at(&case, &catalog, &query, 256);
        assert_eq!(
            batched.canonical(&catalog, &query),
            scalar.canonical(&catalog, &query),
            "case {i}"
        );
        assert!(
            batched.events <= scalar.events,
            "case {i}: batched run used {} events vs scalar {}",
            batched.events,
            scalar.events
        );
        amortized_somewhere |= batched.events < scalar.events;
    }
    assert!(
        amortized_somewhere,
        "no case amortized any events — batching is not engaging"
    );
}

/// Sharded SteMs are observationally invisible: for randomized SPJ
/// queries, running the same query at every shard count in {1, 2, 4, 7}
/// must be **bit-identical** to the unsharded engine — the same *ordered*
/// result vector, the same event count and virtual end time, and the same
/// adaptivity metrics (`hints_recosted`, probe/bounce/duplicate counters).
/// Sharding may only change which threads do the dictionary work, never
/// what any module observes. (The sweep pins stores to insertion-ordered
/// backends, where the timestamp-merge reproduces candidate order
/// exactly; `gen_case` never emits the value-ordered Sorted store.)
#[test]
fn shard_count_is_invariant() {
    const METRICS: [&str; 8] = [
        "results",
        "stem_probes",
        "probes_bounced",
        "probes_consumed",
        "duplicates_absorbed",
        "hints_recosted",
        "route_batches",
        "retired",
    ];
    for i in 0..24u64 {
        let mut rng = SimRng::new(0x54A2D ^ i);
        let case = gen_case(&mut rng);
        let (catalog, query) = build_case(&case);
        let expected =
            reference::canonical(&catalog, &query, &reference::execute(&catalog, &query));
        let baseline = run_at_shards(&case, &catalog, &query, 64, SHARDS[0]);
        assert!(
            baseline.violations.is_empty(),
            "case {i} unsharded violations: {:?}",
            baseline.violations
        );
        assert_eq!(
            baseline.canonical(&catalog, &query),
            expected,
            "case {i}: unsharded vs reference"
        );
        for shards in &SHARDS[1..] {
            let sharded = run_at_shards(&case, &catalog, &query, 64, *shards);
            assert!(
                sharded.violations.is_empty(),
                "case {i} shards {shards} violations: {:?}",
                sharded.violations
            );
            assert_eq!(
                sharded.results, baseline.results,
                "case {i}: shards {shards} ordered results diverged"
            );
            assert_eq!(
                sharded.events, baseline.events,
                "case {i}: shards {shards} event count diverged"
            );
            assert_eq!(
                sharded.end_time, baseline.end_time,
                "case {i}: shards {shards} virtual end time diverged"
            );
            for m in METRICS {
                assert_eq!(
                    sharded.counter(m),
                    baseline.counter(m),
                    "case {i}: shards {shards} metric {m:?} diverged"
                );
            }
        }
    }
}

/// Worker-count invariance: the persistent worker pool is a pure
/// scheduling device. Running the same randomized query at worker budgets
/// {1, 2, 4, 8} × shard counts {1, 4} — with the dispatch threshold forced
/// to 1 so even tiny envelopes fan out — must be **bit-identical**: the
/// same ordered result vector, event count, virtual end time and
/// adaptivity metrics. (Workers = 1 services every lane serially on the
/// calling thread; larger budgets split lanes into chunks and steal work
/// across queues — none of which any module may observe.)
#[test]
fn worker_count_is_invariant() {
    const METRICS: [&str; 6] = [
        "results",
        "stem_probes",
        "probes_bounced",
        "probes_consumed",
        "duplicates_absorbed",
        "retired",
    ];
    for i in 0..12u64 {
        let mut rng = SimRng::new(0x33_0CC ^ i);
        let case = gen_case(&mut rng);
        let (catalog, query) = build_case(&case);
        for shards in [1usize, 4] {
            let run_at_workers = |workers: usize| {
                let config = ExecConfig {
                    policy: case.policy.clone(),
                    seed: case.seed,
                    batch_size: 64,
                    num_shards: shards,
                    workers,
                    parallel_min_rows: 1,
                    plan: PlanOptions {
                        default_stem: StemOptions {
                            store: case.store.clone(),
                            ..StemOptions::default()
                        },
                        ..PlanOptions::default()
                    },
                    check_constraints: true,
                    max_events: 20_000_000,
                    ..ExecConfig::default()
                };
                EddyExecutor::build(&catalog, &query, config)
                    .expect("plan")
                    .run()
            };
            let baseline = run_at_workers(1);
            assert!(
                baseline.violations.is_empty(),
                "case {i} shards {shards} workers 1 violations: {:?}",
                baseline.violations
            );
            for workers in [2usize, 4, 8] {
                let pooled = run_at_workers(workers);
                assert!(
                    pooled.violations.is_empty(),
                    "case {i} shards {shards} workers {workers} violations: {:?}",
                    pooled.violations
                );
                assert_eq!(
                    pooled.results, baseline.results,
                    "case {i} shards {shards}: workers {workers} ordered results diverged"
                );
                assert_eq!(
                    pooled.events, baseline.events,
                    "case {i} shards {shards}: workers {workers} event count diverged"
                );
                assert_eq!(
                    pooled.end_time, baseline.end_time,
                    "case {i} shards {shards}: workers {workers} end time diverged"
                );
                for m in METRICS {
                    assert_eq!(
                        pooled.counter(m),
                        baseline.counter(m),
                        "case {i} shards {shards}: workers {workers} metric {m:?} diverged"
                    );
                }
            }
        }
    }
}

/// The shard sweep crossed with batch sizes: shard-count invariance must
/// hold on the scalar routing path too (batch 1 envelopes take the
/// serial single-tuple build/probe route through the shard layer).
#[test]
fn shard_count_is_invariant_at_batch_one() {
    for i in 0..12u64 {
        let mut rng = SimRng::new(0x54A2D1 ^ i);
        let case = gen_case(&mut rng);
        let (catalog, query) = build_case(&case);
        let baseline = run_at_shards(&case, &catalog, &query, 1, 1);
        for shards in [4usize, 7] {
            let sharded = run_at_shards(&case, &catalog, &query, 1, shards);
            assert!(
                sharded.violations.is_empty(),
                "case {i} shards {shards}: {:?}",
                sharded.violations
            );
            assert_eq!(
                sharded.results, baseline.results,
                "case {i} shards {shards}"
            );
            assert_eq!(sharded.events, baseline.events, "case {i} shards {shards}");
        }
    }
}
