//! Edge cases and failure injection: index-only chains (transitive probe
//! completion), stalled sources, composite bind keys, eviction, empty and
//! skewed inputs.

use stems::catalog::{reference, Catalog, IndexSpec, QuerySpec, ScanSpec, SourceId, TableInstance};
use stems::core::plan::PlanOptions;
use stems::core::StemOptions;
use stems::datagen::{gen::ColGen, TableBuilder};
use stems::prelude::*;
use stems::sim::secs;

fn checked() -> ExecConfig {
    ExecConfig {
        check_constraints: true,
        ..ExecConfig::default()
    }
}

fn verify(catalog: &Catalog, query: &QuerySpec, config: ExecConfig) -> Report {
    let report = EddyExecutor::build(catalog, query, config)
        .expect("plan")
        .run();
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    let expected = reference::canonical(catalog, query, &reference::execute(catalog, query));
    assert_eq!(report.canonical(catalog, query), expected);
    report
}

fn kv_table(name: &str, rows: Vec<(i64, i64)>) -> TableDef {
    TableDef::new(
        name,
        Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
    )
    .with_rows(
        rows.into_iter()
            .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
            .collect(),
    )
}

/// Chain where BOTH downstream tables are index-only: S is reached by
/// binding from R, T by binding from S — the asynchronous fetch cascade
/// (every T lookup depends on an S row that itself arrived via a lookup).
#[test]
fn transitive_index_only_chain() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..20).map(|i| (i, i % 5)).collect()))
        .unwrap();
    let s = c
        .add_table(kv_table("S", (0..5).map(|i| (i, i + 100)).collect()))
        .unwrap();
    let t = c
        .add_table(kv_table("T", (0..10).map(|i| (i + 100, i)).collect()))
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(500.0)).unwrap();
    // S: index on k (bound from R.v); T: index on k (bound from S.v).
    c.add_index(s, IndexSpec::new(vec![0], 20_000)).unwrap();
    c.add_index(t, IndexSpec::new(vec![0], 15_000)).unwrap();
    let q = QuerySpec::new(
        &c,
        [(r, "r"), (s, "s"), (t, "t")]
            .iter()
            .map(|(src, a)| TableInstance {
                source: *src,
                alias: a.to_string(),
            })
            .collect(),
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
        ],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    // Every R row matches one S (v ∈ 0..5) and one T (S.v+100 ∈ 100..105).
    assert_eq!(report.results.len(), 20);
    assert!(report.counter("index_probes") >= 10);
}

/// Every source stalls simultaneously mid-run; progress resumes and the
/// result is exact.
#[test]
fn total_blackout_recovers() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..30).map(|i| (i, i % 6)).collect()))
        .unwrap();
    let s = c
        .add_table(kv_table("S", (0..12).map(|i| (i, i % 6)).collect()))
        .unwrap();
    c.add_scan(
        r,
        ScanSpec::with_rate(20.0).stalled_during(secs(1), secs(10)),
    )
    .unwrap();
    c.add_scan(
        s,
        ScanSpec::with_rate(20.0).stalled_during(secs(1), secs(12)),
    )
    .unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    let series = report.metrics.series("results").unwrap();
    // Nothing happens during the blackout...
    assert_eq!(
        series.value_at(secs(9)),
        series.value_at(secs(2)),
        "no progress expected during the blackout"
    );
    // ...and everything completes after it.
    assert_eq!(report.results.len(), 60);
}

/// An index AM with its own stall window delays, but does not lose,
/// responses.
#[test]
fn stalled_index_am_still_answers() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..8).map(|i| (i, i)).collect()))
        .unwrap();
    let s = c
        .add_table(kv_table("S", (0..8).map(|i| (i, i * 10)).collect()))
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(100.0)).unwrap();
    c.add_index(
        s,
        IndexSpec::new(vec![0], 10_000).stalled_during(secs(0), secs(3)),
    )
    .unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    assert_eq!(report.results.len(), 8);
    // All lookups were pushed past the stall window.
    assert!(report.end_time >= secs(3));
}

/// Composite bind key: the index requires BOTH columns bound, covered by
/// two join predicates from the same driving table.
#[test]
fn multi_column_bind_key_index() {
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[
                    ("a", ColumnType::Int),
                    ("b", ColumnType::Int),
                    ("pad", ColumnType::Int),
                ]),
            )
            .with_rows(
                (0..24)
                    .map(|i| vec![Value::Int(i % 4), Value::Int(i % 3), Value::Int(i)])
                    .collect(),
            ),
        )
        .unwrap();
    let s = c
        .add_table(
            TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            )
            .with_rows(
                (0..4)
                    .flat_map(|x| (0..3).map(move |y| vec![Value::Int(x), Value::Int(y)]))
                    .collect(),
            ),
        )
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(200.0)).unwrap();
    c.add_index(s, IndexSpec::new(vec![0, 1], 5_000)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
        ],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    assert_eq!(report.results.len(), 24);
    // 4×3 distinct (a,b) pairs ⇒ 12 coalesced lookups.
    assert_eq!(report.counter("index_probes"), 12);
}

/// Concurrency > 1: more servers, same answers, faster completion.
#[test]
fn index_concurrency_speeds_up_not_changes() {
    let build = |concurrency: usize| {
        let mut c = Catalog::new();
        let r = c
            .add_table(kv_table("R", (0..40).map(|i| (i, i % 20)).collect()))
            .unwrap();
        let s = c
            .add_table(kv_table("S", (0..20).map(|i| (i, i)).collect()))
            .unwrap();
        c.add_scan(r, ScanSpec::with_rate(1000.0)).unwrap();
        c.add_index(
            s,
            IndexSpec::new(vec![0], 100_000).with_concurrency(concurrency),
        )
        .unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap();
        (c, q)
    };
    let (c1, q1) = build(1);
    let serial = verify(&c1, &q1, checked());
    let (c4, q4) = build(4);
    let parallel = verify(&c4, &q4, checked());
    assert_eq!(serial.results.len(), parallel.results.len());
    assert!(
        parallel.end_time * 2 < serial.end_time,
        "4-way concurrency should cut completion at least in half: {} vs {}",
        parallel.end_time,
        serial.end_time
    );
}

/// Windowed (evicting) SteMs intentionally trade completeness for memory:
/// results are a subset of exact, still duplicate-free, and terminate.
#[test]
fn eviction_yields_duplicate_free_subset() {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", 400, 81)
        .col("v", ColGen::Mod(40))
        .register(&mut c)
        .unwrap();
    let s = TableBuilder::new("S", 400, 82)
        .col("v", ColGen::Mod(40))
        .register(&mut c)
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(500.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(500.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .unwrap();
    let exact = reference::execute(&c, &q).len();
    let config = ExecConfig {
        plan: PlanOptions {
            default_stem: StemOptions {
                eviction_window: Some(32),
                ..StemOptions::default()
            },
            ..PlanOptions::default()
        },
        check_constraints: true, // duplicate detection stays on
        ..ExecConfig::default()
    };
    let report = EddyExecutor::build(&c, &q, config).unwrap().run();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.results.len() < exact, "window should lose matches");
    assert!(
        !report.results.is_empty(),
        "window should still find close matches"
    );
    // Every produced result is a genuine join result.
    let valid = reference::canonical(&c, &q, &reference::execute(&c, &q));
    for row in report.canonical(&c, &q) {
        assert!(valid.contains(&row), "spurious result {row:?}");
    }
}

/// Empty middle table in a chain: zero results, clean termination, and
/// the EOT machinery still covers probes.
#[test]
fn empty_middle_table() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..10).map(|i| (i, i)).collect()))
        .unwrap();
    let s = c.add_table(kv_table("S", vec![])).unwrap();
    let t = c
        .add_table(kv_table("T", (0..10).map(|i| (i, i)).collect()))
        .unwrap();
    for (src, rate) in [(r, 100.0), (s, 100.0), (t, 100.0)] {
        c.add_scan(src, ScanSpec::with_rate(rate)).unwrap();
    }
    let q = QuerySpec::new(
        &c,
        [(r, "r"), (s, "s"), (t, "t")]
            .iter()
            .map(|(src, a)| TableInstance {
                source: *src,
                alias: a.to_string(),
            })
            .collect(),
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
        ],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    assert_eq!(report.results.len(), 0);
}

/// Heavy skew: one hot join value carrying most of the weight.
#[test]
fn zipf_skewed_join() {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", 300, 91)
        .col("v", ColGen::Zipf { n: 20, theta: 1.3 })
        .register(&mut c)
        .unwrap();
    let s = TableBuilder::new("S", 100, 92)
        .col("v", ColGen::Zipf { n: 20, theta: 1.3 })
        .register(&mut c)
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(800.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(600.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .unwrap();
    verify(&c, &q, checked());
}

/// Selections so strict that nothing qualifies: termination + 0 results.
#[test]
fn fully_selective_predicates() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..50).map(|i| (i, i)).collect()))
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(1000.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![TableInstance {
            source: r,
            alias: "r".into(),
        }],
        vec![
            Predicate::selection(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Gt,
                Value::Int(100),
            ),
            Predicate::selection(
                PredId(1),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Lt,
                Value::Int(0),
            ),
        ],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    assert_eq!(report.results.len(), 0);
    assert_eq!(report.counter("filtered"), 50);
    let _ = SourceId(0);
}

/// Non-equi (band) join: no hash index applies; SteM probes fall back to
/// scan-filtering, and the join graph still links the tables.
#[test]
fn band_join_less_than() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..15).map(|i| (i, i)).collect()))
        .unwrap();
    let s = c
        .add_table(kv_table("S", (0..15).map(|i| (i, i)).collect()))
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(200.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(150.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![
            // R.v < S.v AND S.v <= R.v + 2 — a band of width 2.
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Lt,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::selection(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Lt,
                Value::Int(12),
            ),
        ],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    // For each s.v = y < 12: matches r.v < y ⇒ y rows. Σ_{y=0}^{11} y = 66.
    assert_eq!(report.results.len(), 66);
}

/// The routing trace records the life of every tuple when enabled, and
/// stays empty (zero cost) when disabled.
#[test]
fn routing_trace_records_tuple_lives() {
    use stems::core::TraceKind;
    let mut c = Catalog::new();
    let r = c.add_table(kv_table("R", vec![(1, 10), (2, 20)])).unwrap();
    let s = c.add_table(kv_table("S", vec![(10, 1)])).unwrap();
    c.add_scan(r, ScanSpec::with_rate(100.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(100.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )],
        None,
    )
    .unwrap();
    let mut config = checked();
    config.trace = true;
    let report = EddyExecutor::build(&c, &q, config).unwrap().run();
    assert_eq!(report.results.len(), 1);
    assert!(!report.trace.is_empty());
    // First routed action must be a BuildFirst build.
    let first_route = report
        .trace
        .iter()
        .find_map(|e| match &e.kind {
            TraceKind::Route { action, .. } => Some(*action),
            _ => None,
        })
        .unwrap();
    assert_eq!(first_route, "build");
    // Exactly one output event, and it renders readably.
    let outputs: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::Output)
        .collect();
    assert_eq!(outputs.len(), 1);
    assert!(outputs[0].to_string().contains("output"));
    // Timestamps are monotone.
    assert!(report.trace.windows(2).all(|w| w[0].t <= w[1].t));

    // Disabled by default: no events recorded.
    let quiet = EddyExecutor::build(&c, &q, checked()).unwrap().run();
    assert!(quiet.trace.is_empty());
}

/// The trace cap bounds memory even on large runs.
#[test]
fn routing_trace_respects_cap() {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", 200, 99)
        .col("v", ColGen::Mod(50))
        .register(&mut c)
        .unwrap();
    let s = TableBuilder::new("S", 200, 98)
        .col("v", ColGen::Mod(50))
        .register(&mut c)
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(1000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(1000.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .unwrap();
    let config = ExecConfig {
        trace: true,
        trace_limit: 100,
        ..ExecConfig::default()
    };
    let report = EddyExecutor::build(&c, &q, config).unwrap().run();
    assert_eq!(report.trace.len(), 100);
}

/// `Report::time_to_fraction` summarizes the online metric.
#[test]
fn time_to_fraction_summary() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..10).map(|i| (i, i)).collect()))
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(10.0)).unwrap(); // 1 row/100ms
    let q = QuerySpec::new(
        &c,
        vec![TableInstance {
            source: r,
            alias: "r".into(),
        }],
        vec![],
        None,
    )
    .unwrap();
    let report = verify(&c, &q, checked());
    let half = report.time_to_fraction(0.5).unwrap();
    let full = report.time_to_fraction(1.0).unwrap();
    assert!(half < full);
    assert!(half >= secs(0) && full > secs(0));
    assert!(report.time_to_fraction(0.0).is_some());
}

// ---------------------------------------------------------------------
// Chunked scan ingestion: EOT ordering under bursty arrival.
// ---------------------------------------------------------------------

/// Chunked scans under stall windows: the EOT is deferred along with the
/// final data chunk, and the join result is still exact. Covers chunk
/// sizes that divide, exceed, and straddle the table sizes.
#[test]
fn chunked_scans_with_stalls_are_exact() {
    for chunk in [2usize, 7, 64] {
        let mut c = Catalog::new();
        let r = c
            .add_table(kv_table("R", (0..30).map(|i| (i, i % 6)).collect()))
            .unwrap();
        let s = c
            .add_table(kv_table("S", (0..12).map(|i| (i, i % 6)).collect()))
            .unwrap();
        c.add_scan(
            r,
            ScanSpec::with_rate(20.0)
                .with_chunk(chunk)
                .stalled_during(secs(1), secs(10)),
        )
        .unwrap();
        c.add_scan(
            s,
            ScanSpec::with_rate(20.0)
                .with_chunk(chunk)
                .stalled_during(secs(1), secs(12)),
        )
        .unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            )],
            None,
        )
        .unwrap();
        verify(&c, &q, checked());
    }
}

/// A chunked self-join: one scan AM serves two instances, so every chunk
/// fans out per instance and the scan EOT must fire exactly once per
/// instance — a duplicated or missing EOT would corrupt SteM coverage and
/// show up as wrong results or constraint violations.
#[test]
fn chunked_self_join_eot_once_per_instance() {
    let mut c = Catalog::new();
    let r = c
        .add_table(kv_table("R", (0..15).map(|i| (i, i % 4)).collect()))
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(100.0).with_chunk(4))
        .unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r1".into(),
            },
            TableInstance {
                source: r,
                alias: "r2".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .unwrap();
    verify(&c, &q, checked());
}

/// The routing trace respects chunked EOT ordering end to end: with a
/// single-table chunked scan every data tuple reaches the output before
/// the engine retires, and re-running with a chunk larger than the table
/// delivers everything in one burst with identical results.
#[test]
fn chunked_single_table_scan_trace_order() {
    for chunk in [3usize, 100] {
        let mut c = Catalog::new();
        let r = c
            .add_table(kv_table("R", (0..10).map(|i| (i, i)).collect()))
            .unwrap();
        c.add_scan(r, ScanSpec::with_rate(10.0).with_chunk(chunk))
            .unwrap();
        let q = QuerySpec::new(
            &c,
            vec![TableInstance {
                source: r,
                alias: "r".into(),
            }],
            vec![],
            None,
        )
        .unwrap();
        let report = verify(&c, &q, checked());
        assert_eq!(report.results.len(), 10, "chunk {chunk}");
        // The EOT trails the last data chunk by one row gap, so the query
        // cannot end before the full table has been delivered.
        assert!(report.end_time >= secs(1), "chunk {chunk}");
    }
}
