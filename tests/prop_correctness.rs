//! Property-based verification of the paper's correctness theorems.
//!
//! Theorem 1 (Duplicate Avoidance) and Theorem 2 (Correctness) say that
//! *any* routing policy satisfying the Table 2 constraints produces the
//! exact query result in finitely many steps. The constraint layer is
//! baked into the engine, so the property we can actually test is: for
//! randomized schemas, data, join topologies, access-method mixes, store
//! backends, policies and seeds, the eddy's output equals the reference
//! nested-loop executor's — no duplicates, no misses, and the run
//! terminates (no livelock, checked by the engine's event guard).

use proptest::prelude::*;
use stems::catalog::{reference, Catalog, IndexSpec, QuerySpec, ScanSpec, TableInstance};
use stems::core::plan::PlanOptions;
use stems::core::StemOptions;
use stems::prelude::*;
use stems::storage::StoreKind;

#[derive(Debug, Clone)]
struct TableSpec {
    rows: Vec<(i64, i64)>, // (serial key, join value)
    scan_rate: f64,
    /// Index on the join value column (col 1) in addition to the scan.
    extra_index: bool,
}

#[derive(Debug, Clone, Copy)]
enum Topology {
    Chain,
    Star,
    Cycle,
}

#[derive(Debug, Clone)]
struct Case {
    tables: Vec<TableSpec>,
    topology: Topology,
    policy: u8,
    seed: u64,
    store: u8,
    /// Constant for an extra selection on table 0 (None = no selection).
    selection_lt: Option<i64>,
}

fn table_spec(max_rows: usize, distinct: i64) -> impl Strategy<Value = TableSpec> {
    (
        prop::collection::vec(0..distinct, 0..max_rows),
        100.0..2000.0f64,
        any::<bool>(),
    )
        .prop_map(|(vals, rate, extra_index)| TableSpec {
            rows: vals
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i as i64, v))
                .collect(),
            scan_rate: rate,
            extra_index,
        })
}

fn case() -> impl Strategy<Value = Case> {
    (
        prop::collection::vec(table_spec(18, 6), 2..4),
        prop_oneof![
            Just(Topology::Chain),
            Just(Topology::Star),
            Just(Topology::Cycle)
        ],
        0u8..3,
        any::<u64>(),
        0u8..5,
        prop::option::of(0..6i64),
    )
        .prop_map(|(tables, topology, policy, seed, store, selection_lt)| Case {
            tables,
            topology,
            policy,
            seed,
            store,
            selection_lt,
        })
}

fn build_case(case: &Case) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    let mut sources = Vec::new();
    for (i, t) in case.tables.iter().enumerate() {
        let def = TableDef::new(
            &format!("t{i}"),
            Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
        )
        .with_rows(
            t.rows
                .iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
                .collect(),
        );
        let id = catalog.add_table(def).expect("table");
        catalog
            .add_scan(id, ScanSpec::with_rate(t.scan_rate))
            .expect("scan");
        if t.extra_index {
            catalog
                .add_index(id, IndexSpec::new(vec![1], 5_000))
                .expect("index");
        }
        sources.push(id);
    }

    let n = sources.len();
    let mut preds = Vec::new();
    let push_join = |a: usize, b: usize, preds: &mut Vec<Predicate>| {
        preds.push(Predicate::join(
            PredId(preds.len() as u16),
            ColRef::new(TableIdx(a as u8), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(b as u8), 1),
        ));
    };
    match case.topology {
        Topology::Chain => {
            for i in 0..n - 1 {
                push_join(i, i + 1, &mut preds);
            }
        }
        Topology::Star => {
            for i in 1..n {
                push_join(0, i, &mut preds);
            }
        }
        Topology::Cycle => {
            for i in 0..n - 1 {
                push_join(i, i + 1, &mut preds);
            }
            if n > 2 {
                push_join(0, n - 1, &mut preds);
            }
        }
    }
    if let Some(c) = case.selection_lt {
        preds.push(Predicate::selection(
            PredId(preds.len() as u16),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Lt,
            Value::Int(c),
        ));
    }
    let query = QuerySpec::new(
        &catalog,
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| TableInstance {
                source: *s,
                alias: format!("t{i}"),
            })
            .collect(),
        preds,
        None,
    )
    .expect("query");
    (catalog, query)
}

fn policy_of(case: &Case) -> RoutingPolicyKind {
    match case.policy {
        0 => RoutingPolicyKind::Fixed { probe_order: None },
        1 => RoutingPolicyKind::Lottery,
        _ => RoutingPolicyKind::BenefitCost {
            epsilon: 0.25,
            drop_rate: 1.0,
        },
    }
}

fn store_of(case: &Case) -> StoreKind {
    match case.store {
        0 => StoreKind::List,
        1 => StoreKind::Hash,
        2 => StoreKind::Adaptive { threshold: 4 },
        3 => StoreKind::Partitioned {
            partitions: 4,
            mem_resident: 1,
        },
        _ => StoreKind::Sorted,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Theorems 1–2: exact results, any topology × policy × store × seed.
    #[test]
    fn eddy_matches_reference(case in case()) {
        let (catalog, query) = build_case(&case);
        let config = ExecConfig {
            policy: policy_of(&case),
            seed: case.seed,
            plan: PlanOptions {
                default_stem: StemOptions {
                    store: store_of(&case),
                    ..StemOptions::default()
                },
                ..PlanOptions::default()
            },
            check_constraints: true,
            max_events: 20_000_000,
            ..ExecConfig::default()
        };
        let report = EddyExecutor::build(&catalog, &query, config)
            .expect("plan")
            .run();
        prop_assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        let expected = reference::canonical(&catalog, &query, &reference::execute(&catalog, &query));
        let got = report.canonical(&catalog, &query);
        prop_assert_eq!(got, expected, "mismatch: {}", report.summary());
    }

    /// The §3.5 relaxation preserves exactness whenever it is legal
    /// (single-scan table, no self-join).
    #[test]
    fn relaxed_buildfirst_matches_reference(case in case()) {
        let mut case = case;
        // Make table 0 eligible: single scan AM.
        case.tables[0].extra_index = false;
        let (catalog, query) = build_case(&case);
        let config = ExecConfig {
            policy: policy_of(&case),
            seed: case.seed,
            plan: PlanOptions {
                no_stem: TableSet::single(TableIdx(0)),
                ..PlanOptions::default()
            },
            check_constraints: true,
            max_events: 20_000_000,
            ..ExecConfig::default()
        };
        let report = EddyExecutor::build(&catalog, &query, config)
            .expect("plan")
            .run();
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        let expected = reference::canonical(&catalog, &query, &reference::execute(&catalog, &query));
        prop_assert_eq!(report.canonical(&catalog, &query), expected);
    }

    /// Determinism: identical configuration ⇒ identical execution trace.
    #[test]
    fn identical_runs_are_identical(case in case()) {
        let (catalog, query) = build_case(&case);
        let mk = || ExecConfig {
            policy: policy_of(&case),
            seed: case.seed,
            ..ExecConfig::default()
        };
        let a = EddyExecutor::build(&catalog, &query, mk()).expect("plan").run();
        let b = EddyExecutor::build(&catalog, &query, mk()).expect("plan").run();
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.results.len(), b.results.len());
    }
}
