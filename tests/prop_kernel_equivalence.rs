//! Kernel/scalar equivalence: the vectorized predicate kernels must agree
//! with scalar `Predicate::eval` verdict-for-verdict.
//!
//! `Predicate::eval_batch` dispatches `col <op> Int-constant` selections to
//! a column-at-a-time kernel and falls back to the scalar loop for every
//! other shape — and for any batch whose kernel column is not all-`Int`.
//! Over randomized batches (all `CmpOp`s, both operand orientations,
//! `Null`s, EOT markers, mixed `Value` types forcing the fallback path,
//! wrong-span tuples) the batch verdict vector must equal the per-tuple
//! scalar verdicts exactly.

use stems::prelude::*;
use stems::sim::SimRng;
use stems::types::TupleBatch;

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// A random value, skewed toward `Int` (the kernel's fast path) but
/// covering every variant the scalar semantics must survive.
fn gen_value(rng: &mut SimRng, int_only: bool) -> Value {
    if int_only {
        return Value::Int(rng.range_inclusive(-4, 4));
    }
    match rng.below(10) {
        0 => Value::Null,
        1 => Value::Eot,
        2 => Value::Float(rng.range_inclusive(-4, 4) as f64 / 2.0),
        3 => Value::str(["a", "b", "zz"][rng.below(3) as usize]),
        4 => Value::Bool(rng.chance(0.5)),
        _ => Value::Int(rng.range_inclusive(-4, 4)),
    }
}

/// A random single-column-vs-Int-constant selection in either orientation,
/// or occasionally a shape the kernel must refuse (Float constant).
fn gen_pred(rng: &mut SimRng) -> Predicate {
    let col = ColRef::new(TableIdx(rng.below(2) as u8), rng.below(2) as usize);
    let op = OPS[rng.below(6) as usize];
    let k = if rng.chance(0.2) {
        Value::Float(rng.range_inclusive(-4, 4) as f64)
    } else {
        Value::Int(rng.range_inclusive(-4, 4))
    };
    if rng.chance(0.5) {
        Predicate::new(PredId(0), Operand::Col(col), op, Operand::Const(k))
    } else {
        // Constant on the left: the kernel must flip the operator.
        Predicate::new(PredId(0), Operand::Const(k), op, Operand::Col(col))
    }
}

fn gen_batch(rng: &mut SimRng, int_only: bool) -> TupleBatch {
    let n = rng.below(200) as usize;
    (0..n)
        .map(|_| {
            // Mostly table 0; sometimes table 1 (wrong span for half the
            // predicates → verdict `None`), arity 2.
            let table = TableIdx(if rng.chance(0.85) { 0 } else { 1 });
            Tuple::singleton_of(
                table,
                vec![gen_value(rng, int_only), gen_value(rng, int_only)],
            )
        })
        .collect()
}

/// Randomized batches, mixed value types: eval_batch ≡ map(eval).
#[test]
fn eval_batch_matches_scalar_on_mixed_batches() {
    let mut rng = SimRng::new(0x5EED_C0DE);
    for case in 0..500 {
        let pred = gen_pred(&mut rng);
        let batch = gen_batch(&mut rng, false);
        let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
        assert_eq!(pred.eval_batch(&batch), want, "case {case}: {pred}");
    }
}

/// All-Int batches take the vectorized path (when the shape qualifies) and
/// must still agree with the scalar loop, for every operator and both
/// operand orientations.
#[test]
fn vectorized_path_matches_scalar_on_all_int_batches() {
    let mut rng = SimRng::new(0x1217_C0DE);
    let mut kernel_hits = 0usize;
    for case in 0..500 {
        let pred = gen_pred(&mut rng);
        let batch = gen_batch(&mut rng, true);
        if pred.int_const_kernel().is_some() {
            kernel_hits += 1;
        }
        let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
        assert_eq!(pred.eval_batch(&batch), want, "case {case}: {pred}");
    }
    assert!(
        kernel_hits > 300,
        "kernel path barely exercised: {kernel_hits}/500"
    );
}

/// Join predicates (col-vs-col) never vectorize but still evaluate
/// batch-equal to scalar, including over composite tuples.
#[test]
fn join_predicates_fall_back_and_agree() {
    let mut rng = SimRng::new(0x101A);
    let join = Predicate::join(
        PredId(0),
        ColRef::new(TableIdx(0), 1),
        CmpOp::Eq,
        ColRef::new(TableIdx(1), 0),
    );
    assert!(join.int_const_kernel().is_none());
    for _ in 0..100 {
        let n = rng.below(64) as usize;
        let batch: TupleBatch = (0..n)
            .map(|_| {
                let left = Tuple::singleton_of(
                    TableIdx(0),
                    vec![gen_value(&mut rng, false), gen_value(&mut rng, false)],
                );
                if rng.chance(0.7) {
                    let right = Tuple::singleton_of(
                        TableIdx(1),
                        vec![gen_value(&mut rng, false), gen_value(&mut rng, false)],
                    );
                    left.concat(&right)
                } else {
                    left // wrong span → None
                }
            })
            .collect();
        let want: Vec<Option<bool>> = batch.iter().map(|t| join.eval(t)).collect();
        assert_eq!(join.eval_batch(&batch), want);
    }
}

/// One adversarial poison value anywhere in a large Int batch must flip the
/// whole batch onto the scalar path without changing any verdict.
#[test]
fn single_poison_value_does_not_corrupt_verdicts() {
    let mut rng = SimRng::new(0xBAD_CE11);
    for poison in [
        Value::Null,
        Value::Eot,
        Value::Float(1.5),
        Value::str("q"),
        Value::Bool(true),
    ] {
        for op in OPS {
            let pred =
                Predicate::selection(PredId(0), ColRef::new(TableIdx(0), 0), op, Value::Int(1));
            let mut vals: Vec<Value> = (0..97)
                .map(|_| Value::Int(rng.range_inclusive(-2, 2)))
                .collect();
            let slot = rng.below(vals.len() as u64) as usize;
            vals[slot] = poison.clone();
            let batch: TupleBatch = vals
                .into_iter()
                .map(|v| Tuple::singleton_of(TableIdx(0), vec![v]))
                .collect();
            let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
            assert_eq!(pred.eval_batch(&batch), want, "poison {poison} op {op}");
        }
    }
}
