//! Kernel/scalar equivalence: the vectorized predicate kernels must agree
//! with scalar `Predicate::eval` verdict-for-verdict.
//!
//! `Predicate::eval_batch` dispatches constant selections (`Int`/`Float`/
//! `Str`/`Bool` constants in either orientation, homogeneous IN-lists) to
//! column-at-a-time kernels built on a typed partial gather: each batch
//! member is classified once into a typed lane or an exception list, and
//! only exception rows take the scalar path. Over randomized batches (all
//! `CmpOp`s, both operand orientations, `Null`s, EOT markers, NaNs, mixed
//! `Value` types, wrong-span tuples) the batch verdict vector must equal
//! the per-tuple scalar verdicts exactly — and so must fused conjunction
//! cascades (`Sm::apply_batch_fused`), which ride the same kernels through
//! the masked entry point.

use stems::core::Sm;
use stems::prelude::*;
use stems::sim::SimRng;
use stems::types::TupleBatch;

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// A random value, skewed toward the typed-lane fast paths but covering
/// every variant the scalar semantics must survive — including NaN and
/// negative zero.
fn gen_value(rng: &mut SimRng, int_only: bool) -> Value {
    if int_only {
        return Value::Int(rng.range_inclusive(-4, 4));
    }
    match rng.below(12) {
        0 => Value::Null,
        1 => Value::Eot,
        2 => Value::Float(rng.range_inclusive(-4, 4) as f64 / 2.0),
        3 => Value::Float(f64::NAN),
        4 => Value::Float(-0.0),
        5 => Value::str(["a", "b", "zz"][rng.below(3) as usize]),
        6 => Value::Bool(rng.chance(0.5)),
        _ => Value::Int(rng.range_inclusive(-4, 4)),
    }
}

/// A random constant for the right-hand side, spanning the whole kernel
/// family plus the shapes the kernels must refuse (NULL/EOT constants).
fn gen_const(rng: &mut SimRng) -> Value {
    match rng.below(10) {
        0 => Value::Float(rng.range_inclusive(-4, 4) as f64 / 2.0),
        1 => Value::Float(f64::NAN),
        2 => Value::str(["a", "b", "zz"][rng.below(3) as usize]),
        3 => Value::Bool(rng.chance(0.5)),
        4 => Value::Null,
        5 => Value::Eot,
        _ => Value::Int(rng.range_inclusive(-4, 4)),
    }
}

/// A random selection: a typed constant comparison in either orientation,
/// or an IN-list (homogeneous or adversarially mixed).
fn gen_pred(rng: &mut SimRng) -> Predicate {
    let col = ColRef::new(TableIdx(rng.below(2) as u8), rng.below(2) as usize);
    if rng.chance(0.25) {
        // IN-list: 0..4 members, sometimes homogeneous Int/Str (kernel),
        // sometimes mixed (scalar coercion semantics).
        let n = rng.below(4) as usize;
        let items: Vec<Value> = (0..n)
            .map(|_| match rng.below(4) {
                0 => Value::str(["a", "zz"][rng.below(2) as usize]),
                1 => Value::Float(rng.range_inclusive(-4, 4) as f64),
                _ => Value::Int(rng.range_inclusive(-4, 4)),
            })
            .collect();
        return Predicate::in_list(PredId(0), col, items);
    }
    let op = OPS[rng.below(6) as usize];
    let k = gen_const(rng);
    if rng.chance(0.5) {
        Predicate::new(PredId(0), Operand::Col(col), op, Operand::Const(k))
    } else {
        // Constant on the left: the kernel must flip the operator.
        Predicate::new(PredId(0), Operand::Const(k), op, Operand::Col(col))
    }
}

fn gen_batch(rng: &mut SimRng, int_only: bool) -> TupleBatch {
    let n = rng.below(200) as usize;
    (0..n)
        .map(|_| {
            // Mostly table 0; sometimes table 1 (wrong span for half the
            // predicates → verdict `None`), arity 2.
            let table = TableIdx(if rng.chance(0.85) { 0 } else { 1 });
            Tuple::singleton_of(
                table,
                vec![gen_value(rng, int_only), gen_value(rng, int_only)],
            )
        })
        .collect()
}

/// Randomized predicates over randomized mixed batches — the full kernel
/// family plus every refused shape: eval_batch ≡ map(eval).
#[test]
fn eval_batch_matches_scalar_on_mixed_batches() {
    let mut rng = SimRng::new(0x5EED_C0DE);
    for case in 0..1000 {
        let pred = gen_pred(&mut rng);
        let batch = gen_batch(&mut rng, false);
        let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
        assert_eq!(pred.eval_batch(&batch), want, "case {case}: {pred}");
    }
}

/// All-Int batches take the vectorized path (when the shape qualifies) and
/// must still agree with the scalar loop, for every operator and both
/// operand orientations.
#[test]
fn vectorized_path_matches_scalar_on_all_int_batches() {
    let mut rng = SimRng::new(0x1217_C0DE);
    let mut kernel_hits = 0usize;
    for case in 0..500 {
        let pred = gen_pred(&mut rng);
        let batch = gen_batch(&mut rng, true);
        if pred.const_kernel().is_some() {
            kernel_hits += 1;
        }
        let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
        assert_eq!(pred.eval_batch(&batch), want, "case {case}: {pred}");
    }
    assert!(
        kernel_hits > 300,
        "kernel path barely exercised: {kernel_hits}/500"
    );
}

/// Every typed constant comparison (Float including NaN constants, Str,
/// Bool) over uniformly typed batches engages its kernel and agrees with
/// the scalar loop on every operator.
#[test]
fn typed_constant_family_matches_scalar() {
    let mut rng = SimRng::new(0xF10A7);
    type ConstGen = fn(&mut SimRng) -> Value;
    let consts: [(&str, ConstGen); 4] = [
        ("float", |r| {
            Value::Float(r.range_inclusive(-4, 4) as f64 / 2.0)
        }),
        ("nan", |_| Value::Float(f64::NAN)),
        ("str", |r| Value::str(["a", "b", "zz"][r.below(3) as usize])),
        ("bool", |r| Value::Bool(r.chance(0.5))),
    ];
    for (label, genk) in consts {
        for op in OPS {
            for case in 0..40 {
                let k = genk(&mut rng);
                let pred =
                    Predicate::selection(PredId(0), ColRef::new(TableIdx(0), 0), op, k.clone());
                assert!(
                    pred.const_kernel().is_some(),
                    "{label} {op} should vectorize"
                );
                let batch = gen_batch(&mut rng, false);
                let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
                assert_eq!(
                    pred.eval_batch(&batch),
                    want,
                    "{label} op {op} case {case}: {pred}"
                );
            }
        }
    }
}

/// IN-list membership — homogeneous Int/Str lists (kernel path) and mixed
/// lists (scalar coercion path) — agrees with the scalar loop.
#[test]
fn in_list_kernels_match_scalar() {
    let mut rng = SimRng::new(0x1_11);
    let mut kernel_hits = 0usize;
    for case in 0..400 {
        let col = ColRef::new(TableIdx(0), rng.below(2) as usize);
        let n = rng.below(5) as usize;
        let homogeneous = rng.below(3);
        let items: Vec<Value> = (0..n)
            .map(|_| match homogeneous {
                0 => Value::Int(rng.range_inclusive(-4, 4)),
                1 => Value::str(["a", "b", "zz"][rng.below(3) as usize]),
                _ => gen_const(&mut rng),
            })
            .collect();
        let pred = Predicate::in_list(PredId(0), col, items);
        if pred.const_kernel().is_some() {
            kernel_hits += 1;
        }
        let batch = gen_batch(&mut rng, false);
        let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
        assert_eq!(pred.eval_batch(&batch), want, "case {case}: {pred}");
    }
    assert!(
        kernel_hits > 100,
        "IN kernels barely exercised: {kernel_hits}/400"
    );
}

/// Join predicates (col-vs-col) never vectorize but still evaluate
/// batch-equal to scalar, including over composite tuples.
#[test]
fn join_predicates_fall_back_and_agree() {
    let mut rng = SimRng::new(0x101A);
    let join = Predicate::join(
        PredId(0),
        ColRef::new(TableIdx(0), 1),
        CmpOp::Eq,
        ColRef::new(TableIdx(1), 0),
    );
    assert!(join.const_kernel().is_none());
    for _ in 0..100 {
        let n = rng.below(64) as usize;
        let batch: TupleBatch = (0..n)
            .map(|_| {
                let left = Tuple::singleton_of(
                    TableIdx(0),
                    vec![gen_value(&mut rng, false), gen_value(&mut rng, false)],
                );
                if rng.chance(0.7) {
                    let right = Tuple::singleton_of(
                        TableIdx(1),
                        vec![gen_value(&mut rng, false), gen_value(&mut rng, false)],
                    );
                    left.concat(&right)
                } else {
                    left // wrong span → None
                }
            })
            .collect();
        let want: Vec<Option<bool>> = batch.iter().map(|t| join.eval(t)).collect();
        assert_eq!(join.eval_batch(&batch), want);
    }
}

/// One adversarial poison value anywhere in a large typed batch becomes a
/// lone exception row — all other verdicts still come off the typed lane
/// and every verdict matches the scalar loop.
#[test]
fn single_poison_value_does_not_corrupt_verdicts() {
    let mut rng = SimRng::new(0xBAD_CE11);
    for poison in [
        Value::Null,
        Value::Eot,
        Value::Float(1.5),
        Value::Float(f64::NAN),
        Value::str("q"),
        Value::Bool(true),
    ] {
        for op in OPS {
            let pred =
                Predicate::selection(PredId(0), ColRef::new(TableIdx(0), 0), op, Value::Int(1));
            let mut vals: Vec<Value> = (0..97)
                .map(|_| Value::Int(rng.range_inclusive(-2, 2)))
                .collect();
            let slot = rng.below(vals.len() as u64) as usize;
            vals[slot] = poison.clone();
            let batch: TupleBatch = vals
                .into_iter()
                .map(|v| Tuple::singleton_of(TableIdx(0), vec![v]))
                .collect();
            let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
            assert_eq!(pred.eval_batch(&batch), want, "poison {poison} op {op}");
        }
    }
}

/// Fused conjunction cascades agree with the sequential scalar cascade:
/// for random chains of selections over one table, `Sm::apply_batch_fused`
/// must produce, per tuple, the same overall verdict, the same earned
/// donebits, and the same per-predicate evaluation sequence as applying
/// each predicate in order with short-circuit on the first failure.
#[test]
fn fused_conjunctions_match_sequential_scalar_cascade() {
    let mut rng = SimRng::new(0x000F_05ED);
    for case in 0..300 {
        let n_preds = 1 + rng.below(3) as usize; // 1..=3
        let preds: Vec<Predicate> = (0..n_preds)
            .map(|i| {
                let mut p = gen_pred(&mut rng);
                p.id = PredId(i as u16);
                p
            })
            .collect();
        let batch = gen_batch(&mut rng, false);
        let sm = Sm::new(preds[0].clone());
        let sibling_sms: Vec<Sm> = preds[1..].iter().cloned().map(Sm::new).collect();
        let siblings: Vec<&Sm> = sibling_sms.iter().collect();
        let fused = sm.apply_batch_fused(&batch, &siblings);
        for (i, tuple) in batch.iter().enumerate() {
            // Reference: the scalar cascade.
            let mut verdict = None;
            let mut evals = Vec::new();
            let mut passed = stems::types::PredSet::EMPTY;
            for p in &preds {
                match p.eval(tuple) {
                    Some(true) => {
                        evals.push((p.id, true));
                        passed.insert(p.id);
                        verdict = Some(Some(true));
                    }
                    Some(false) => {
                        evals.push((p.id, false));
                        verdict = Some(Some(false));
                        break;
                    }
                    None => {
                        verdict = Some(None);
                        break;
                    }
                }
            }
            let want = verdict.expect("at least one predicate");
            let got = &fused[i];
            assert_eq!(got.verdict, want, "case {case} row {i}");
            assert_eq!(got.evals, evals, "case {case} row {i}");
            if want == Some(true) {
                assert_eq!(got.passed, passed, "case {case} row {i}");
            }
        }
    }
}
