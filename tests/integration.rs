//! Cross-crate integration tests: SQL → catalog → eddy → results, checked
//! against the reference executor and the baseline operators.

use stems::baseline::{
    grace_hash_join, index_join, sort_merge_join, symmetric_hash_join, ArrivalStream, GraceParams,
    IndexJoinParams, ShjParams, SortMergeParams,
};
use stems::catalog::reference;
use stems::datagen::{gen::ColGen, Table3, Table3Config, TableBuilder};
use stems::prelude::*;
use stems::sim::secs_f;

fn checked() -> ExecConfig {
    ExecConfig {
        check_constraints: true,
        ..ExecConfig::default()
    }
}

fn run_and_verify(catalog: &Catalog, query: &QuerySpec, config: ExecConfig) -> Report {
    let report = EddyExecutor::build(catalog, query, config)
        .expect("plan")
        .run();
    assert!(
        report.violations.is_empty(),
        "constraint violations: {:?}",
        report.violations
    );
    let expected = reference::canonical(catalog, query, &reference::execute(catalog, query));
    assert_eq!(
        report.canonical(catalog, query),
        expected,
        "eddy result mismatch ({})",
        report.summary()
    );
    report
}

#[test]
fn mixed_type_selections_with_in_lists_end_to_end() {
    // Str/Float/NULL-mixed columns + an IN-list + a Str inequality: the
    // typed partial-gather kernels (with exception rows) and conjunction
    // fusion both engage, and the result multiset must still match the
    // scalar reference executor.
    let mut catalog = Catalog::new();
    let r_rows: Vec<Vec<Value>> = (0..60i64)
        .map(|i| {
            let cat = match i % 5 {
                0 => Value::str("a"),
                1 => Value::str("b"),
                2 => Value::str("c"),
                3 => Value::Null,
                _ => Value::str("d"),
            };
            // A Float column carrying Ints and NULLs: the float kernel
            // widens the Ints, the NULLs ride the exception list.
            let score = match i % 7 {
                0 => Value::Null,
                x if x % 2 == 0 => Value::Float(i as f64 / 4.0),
                _ => Value::Int(i / 4),
            };
            vec![Value::Int(i), cat, score]
        })
        .collect();
    let r = catalog
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[
                    ("key", ColumnType::Int),
                    ("cat", ColumnType::Str),
                    ("score", ColumnType::Float),
                ]),
            )
            .with_rows(r_rows),
        )
        .unwrap();
    let s_rows: Vec<Vec<Value>> = (0..40i64)
        .map(|i| {
            vec![
                Value::Int(i % 20),
                Value::str(["a", "b", "zz"][(i % 3) as usize]),
            ]
        })
        .collect();
    let s = catalog
        .add_table(
            TableDef::new(
                "S",
                Schema::of(&[("k", ColumnType::Int), ("tag", ColumnType::Str)]),
            )
            .with_rows(s_rows),
        )
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(500.0)).unwrap();
    catalog.add_scan(s, ScanSpec::with_rate(400.0)).unwrap();
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S WHERE R.key = S.k \
         AND R.cat IN ('a', 'b', 'd') AND R.score < 7.5 AND S.tag <> 'zz'",
    )
    .unwrap();
    let report = run_and_verify(&catalog, &query, checked());
    assert!(
        !report.results.is_empty(),
        "workload should produce matches"
    );
}

#[test]
fn sql_to_results_three_way_with_selections() {
    let mut catalog = Catalog::new();
    for (name, n, seed) in [("a", 40usize, 1u64), ("b", 30, 2), ("c", 20, 3)] {
        TableBuilder::new(name, n, seed)
            .col("v", ColGen::Mod(8))
            .col("w", ColGen::Mod(5))
            .register(&mut catalog)
            .unwrap();
    }
    for i in 0..3 {
        catalog
            .add_scan(SourceId(i), ScanSpec::with_rate(500.0 + 100.0 * i as f64))
            .unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT a.key, c.key FROM a, b, c \
         WHERE a.v = b.v AND b.w = c.w AND a.key > 3 AND c.w < 4",
    )
    .unwrap();
    run_and_verify(&catalog, &query, checked());
}

use stems::catalog::SourceId;

#[test]
fn all_policies_agree_on_cyclic_query() {
    let mut catalog = Catalog::new();
    for (name, seed) in [("x", 4u64), ("y", 5), ("z", 6)] {
        TableBuilder::new(name, 25, seed)
            .col("v", ColGen::Mod(6))
            .register(&mut catalog)
            .unwrap();
        let id = catalog.source_by_name(name).unwrap();
        catalog.add_scan(id, ScanSpec::with_rate(300.0)).unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT * FROM x, y, z WHERE x.v = y.v AND y.v = z.v AND x.v = z.v",
    )
    .unwrap();
    let mut canons = Vec::new();
    for (i, policy) in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::Lottery,
        RoutingPolicyKind::BenefitCost {
            epsilon: 0.2,
            drop_rate: 1.0,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let config = ExecConfig {
            policy,
            seed: 100 + i as u64,
            ..checked()
        };
        canons.push(run_and_verify(&catalog, &query, config).canonical(&catalog, &query));
    }
    assert_eq!(canons[0], canons[1]);
    assert_eq!(canons[1], canons[2]);
}

#[test]
fn table3_q1_exactness_and_probe_count() {
    let cfg = Table3Config {
        r_rows: 200,
        r_distinct: 50,
        ..Table3Config::default()
    };
    let (catalog, query, _, _) = Table3::q1(&cfg).unwrap();
    let report = run_and_verify(&catalog, &query, checked());
    assert_eq!(report.results.len(), 200);
    assert_eq!(report.counter("index_probes"), 50);
}

#[test]
fn table3_q4_exactness_under_hybrid_policy() {
    let cfg = Table3Config {
        r_rows: 150,
        t_rows: 150,
        ..Table3Config::default()
    };
    let (catalog, query, _, _) = Table3::q4(&cfg).unwrap();
    let config = ExecConfig {
        policy: RoutingPolicyKind::BenefitCost {
            epsilon: 0.1,
            drop_rate: 0.5,
        },
        ..checked()
    };
    let report = run_and_verify(&catalog, &query, config);
    assert_eq!(report.results.len(), 150);
}

/// The eddy and every baseline operator agree on the result multiset.
#[test]
fn eddy_and_baselines_agree() {
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", 60, 7)
        .col("v", ColGen::Mod(15))
        .register(&mut catalog)
        .unwrap();
    let s = TableBuilder::new("S", 45, 8)
        .col("v", ColGen::Mod(15))
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(200.0)).unwrap();
    catalog.add_scan(s, ScanSpec::with_rate(150.0)).unwrap();
    let query = parse_query(&catalog, "SELECT * FROM R, S WHERE R.v = S.v").unwrap();

    let eddy = run_and_verify(&catalog, &query, checked());
    let expected = eddy.results.len();

    let r_stream = ArrivalStream::from_scan(catalog.table_expect(r), &ScanSpec::with_rate(200.0));
    let s_stream = ArrivalStream::from_scan(catalog.table_expect(s), &ScanSpec::with_rate(150.0));

    let ij = index_join(
        &r_stream,
        catalog.table_expect(s).rows(),
        &IndexJoinParams {
            lookup_latency_us: secs_f(0.05),
            hit_cost_us: 100,
            outer_instance: TableIdx(0),
            inner_instance: TableIdx(1),
            outer_col: 1,
            inner_col: 1,
        },
    );
    assert_eq!(ij.results.len(), expected);

    let shj = symmetric_hash_join(
        &r_stream,
        TableIdx(0),
        1,
        &s_stream,
        TableIdx(1),
        1,
        &ShjParams::default(),
    );
    assert_eq!(shj.results.len(), expected);

    let grace = grace_hash_join(
        &r_stream,
        &s_stream,
        &GraceParams {
            left_col: 1,
            right_col: 1,
            mem_partitions: 2,
            ..GraceParams::default()
        },
    );
    assert_eq!(grace.results.len(), expected);

    let sm = sort_merge_join(
        &r_stream,
        &s_stream,
        &SortMergeParams {
            left_col: 1,
            right_col: 1,
            ..SortMergeParams::default()
        },
    );
    assert_eq!(sm.results.len(), expected);

    // Value-level agreement between the two hash-family baselines.
    assert_eq!(shj.canonical_values(), grace.canonical_values());
    assert_eq!(shj.canonical_values(), sm.canonical_values());
}

#[test]
fn projection_applied_at_output() {
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", 10, 9)
        .col("v", ColGen::Serial)
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(100.0)).unwrap();
    let query = parse_query(&catalog, "SELECT R.v FROM R WHERE R.v >= 7").unwrap();
    let report = run_and_verify(&catalog, &query, checked());
    let canon = report.canonical(&catalog, &query);
    assert_eq!(
        canon,
        vec![
            vec![Value::Int(7)],
            vec![Value::Int(8)],
            vec![Value::Int(9)]
        ]
    );
}

#[test]
fn four_way_star_join() {
    let mut catalog = Catalog::new();
    let hub = TableBuilder::new("hub", 20, 10)
        .col("a", ColGen::Mod(5))
        .col("b", ColGen::Mod(4))
        .col("c", ColGen::Mod(3))
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(hub, ScanSpec::with_rate(400.0)).unwrap();
    for (name, distinct, seed) in [("da", 5i64, 11u64), ("db", 4, 12), ("dc", 3, 13)] {
        let id = TableBuilder::new(name, 12, seed)
            .col("v", ColGen::Mod(distinct))
            .register(&mut catalog)
            .unwrap();
        catalog.add_scan(id, ScanSpec::with_rate(350.0)).unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT * FROM hub, da, db, dc \
         WHERE hub.a = da.v AND hub.b = db.v AND hub.c = dc.v",
    )
    .unwrap();
    for policy in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::Lottery,
    ] {
        run_and_verify(
            &catalog,
            &query,
            ExecConfig {
                policy,
                ..checked()
            },
        );
    }
}

#[test]
fn infeasible_query_is_rejected_with_clear_error() {
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", 5, 14)
        .col("v", ColGen::Serial)
        .register(&mut catalog)
        .unwrap();
    let s = TableBuilder::new("S", 5, 15)
        .col("v", ColGen::Serial)
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::default()).unwrap();
    // S only has an index on `key`, but the join binds `v`: infeasible.
    catalog.add_index(s, IndexSpec::new(vec![0], 1000)).unwrap();
    let query = parse_query(&catalog, "SELECT * FROM R, S WHERE R.v = S.v").unwrap();
    let err = match EddyExecutor::build(&catalog, &query, ExecConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("expected infeasible-query error"),
    };
    let msg = err.to_string();
    assert!(msg.contains("infeasible"), "unexpected error: {msg}");
}

#[test]
fn multi_member_in_list_binds_index_only_table() {
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", 40, 21)
        .col("v", ColGen::Mod(6))
        .register(&mut catalog)
        .unwrap();
    let s = TableBuilder::new("S", 30, 22)
        .col("v", ColGen::Mod(6))
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(300.0)).unwrap();
    // S is reachable ONLY through its index on `key`, and no predicate
    // supplies a single key — the multi-member IN list must bind it
    // (feasibility) AND the runtime must fan the probe out across the
    // members and terminate with exact results (runtime == feasibility).
    catalog.add_index(s, IndexSpec::new(vec![0], 1000)).unwrap();
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S WHERE R.v = S.v AND S.key IN (3, 7, 11)",
    )
    .unwrap();
    let report = run_and_verify(&catalog, &query, checked());
    assert!(!report.results.is_empty(), "members should find matches");
    // One index lookup per IN member; every R tuple's fan-out coalesces
    // onto those three in-flight/answered keys.
    assert_eq!(report.counter("index_probes"), 3);
}

#[test]
fn float_and_string_join_keys() {
    let mut catalog = Catalog::new();
    let a = catalog
        .add_table(
            TableDef::new(
                "fa",
                Schema::of(&[("k", ColumnType::Float), ("tag", ColumnType::Str)]),
            )
            .with_rows(vec![
                vec![Value::Float(1.0), "x".into()],
                vec![Value::Float(2.5), "y".into()],
            ]),
        )
        .unwrap();
    let b = catalog
        .add_table(
            TableDef::new("fb", Schema::of(&[("k", ColumnType::Int)]))
                .with_rows(vec![vec![1.into()], vec![2.into()]]),
        )
        .unwrap();
    catalog.add_scan(a, ScanSpec::default()).unwrap();
    catalog.add_scan(b, ScanSpec::default()).unwrap();
    // Float(1.0) must join Int(1) (SQL numeric equality).
    let query = parse_query(&catalog, "SELECT * FROM fa, fb WHERE fa.k = fb.k").unwrap();
    let report = run_and_verify(&catalog, &query, checked());
    assert_eq!(report.results.len(), 1);
}
