//! Memo/dedup equivalence: the expensive-predicate fast path — per-key
//! verdict memoization ([`stems::core::MemoCache`]) and within-envelope
//! dedup (`Sm::apply_batch_udf`) — must agree with direct scalar
//! [`Predicate::eval`] verdict-for-verdict. Over randomized batches the
//! four memo×dedup configurations must produce identical verdict vectors,
//! including for keys that can never be cached (`Null`/`Eot`), keys whose
//! equality normal form coerces (`Int(5)` vs `Float(5.0)`), `NaN` keys
//! (never equal to themselves, so never served from cache), and
//! adversarial `stable_key_hash` collisions, which must fall back to full
//! key comparison. A poisoned cache shard must recover to an empty shard
//! and keep producing correct verdicts.

use stems::core::{MemoCache, Sm};
use stems::prelude::*;
use stems::sim::SimRng;
use stems::types::{TupleBatch, UdfSpec};

/// A random sieve input, skewed toward duplicates (small Int range) but
/// covering every shape the key pipeline must survive.
fn gen_value(rng: &mut SimRng) -> Value {
    match rng.below(16) {
        0 => Value::Null,
        1 => Value::Eot,
        2 => Value::Float(f64::NAN),
        3 => Value::Float(-0.0),
        // Integral float: coerces to the same equality key as its Int.
        4 | 5 => Value::Float(rng.range_inclusive(-4, 4) as f64),
        6 => Value::Float(rng.range_inclusive(-9, 9) as f64 / 2.0),
        7 => Value::str(["a", "b", "zz", "long-enough-to-heap"][rng.below(4) as usize]),
        8 => Value::Bool(rng.chance(0.5)),
        _ => Value::Int(rng.range_inclusive(-6, 6)),
    }
}

fn gen_batch(rng: &mut SimRng) -> TupleBatch {
    let n = rng.below(120) as usize;
    (0..n)
        .map(|_| {
            // Mostly table 0 (the predicate's span); sometimes table 1 —
            // unresolvable, so the verdict must be `None` everywhere.
            let table = TableIdx(if rng.chance(0.9) { 0 } else { 1 });
            Tuple::singleton_of(table, vec![gen_value(rng), gen_value(rng)])
        })
        .collect()
}

fn sieve(ppm: u16) -> Predicate {
    Predicate::udf(
        PredId(0),
        ColRef::new(TableIdx(0), 1),
        UdfSpec::hash_sieve(ppm, 1_000),
    )
}

/// All four memo×dedup configurations ≡ scalar eval, per row, over
/// randomized batches — with the memoized SMs keeping their cache *across*
/// batches, so later batches are served mostly from memo hits.
#[test]
fn memo_and_dedup_match_scalar_verdicts() {
    let mut rng = SimRng::new(0x3E40_CA5E);
    for &ppm in &[0u16, 1, 250, 500, 999, 1000] {
        let pred = sieve(ppm);
        let plain = Sm::new(pred.clone());
        let mut memoed = Sm::new(pred.clone());
        memoed.set_memo(Some(MemoCache::cell(4, 1 << 16)));
        let mut total_hits = 0u64;
        for case in 0..60 {
            let batch = gen_batch(&mut rng);
            let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
            for dedup in [false, true] {
                let got = plain.apply_batch_udf(&batch, dedup);
                assert_eq!(got.verdicts, want, "ppm {ppm} case {case} dedup {dedup}");
                let got = memoed.apply_batch_udf(&batch, dedup);
                assert_eq!(
                    got.verdicts, want,
                    "ppm {ppm} case {case} dedup {dedup} (memo)"
                );
                total_hits += got.memo.hits;
            }
        }
        assert!(
            total_hits > 0,
            "ppm {ppm}: cross-batch memo never hit — the cache is dead"
        );
    }
}

/// Dedup evaluates one representative per distinct key: on duplicate-heavy
/// batches it must compute strictly fewer verdicts than the plain path,
/// and a warm memo must not compute at all.
#[test]
fn dedup_and_memo_actually_save_work() {
    let pred = sieve(500);
    let batch: TupleBatch = (0..100)
        .map(|i: i64| Tuple::singleton_of(TableIdx(0), vec![Value::Int(i), Value::Int(i % 5)]))
        .collect();
    let plain = Sm::new(pred.clone());
    assert_eq!(plain.apply_batch_udf(&batch, false).computed, 100);
    assert_eq!(plain.apply_batch_udf(&batch, true).computed, 5);
    let mut memoed = Sm::new(pred);
    memoed.set_memo(Some(MemoCache::cell(4, 1 << 16)));
    assert_eq!(memoed.apply_batch_udf(&batch, true).computed, 5);
    let warm = memoed.apply_batch_udf(&batch, true);
    assert_eq!(warm.computed, 0, "warm memo should serve every key");
    assert_eq!(warm.memo.hits, 5);
}

/// Forced hash collisions (every key claims hash 42) must fall back to
/// full-key dictionary comparison: each distinct key keeps its own
/// verdict, and a colliding never-inserted key misses.
#[test]
fn adversarial_hash_collisions_compare_full_keys() {
    let cache = MemoCache::new(2, 1 << 16);
    // Distinct keys, alternating verdicts, one shared hash.
    let keys: Vec<Value> = (0..16).map(Value::Int).collect();
    for (i, k) in keys.iter().enumerate() {
        cache.insert_with_hash(42, k.clone(), i % 2 == 0);
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(
            cache.lookup_with_hash(42, k),
            Some(i % 2 == 0),
            "collision chain lost key {k}"
        );
    }
    assert_eq!(cache.lookup_with_hash(42, &Value::Int(99)), None);
    // A colliding *string* key (different Value kind entirely).
    cache.insert_with_hash(42, Value::str("x"), true);
    assert_eq!(cache.lookup_with_hash(42, &Value::str("x")), Some(true));
    assert_eq!(cache.lookup_with_hash(42, &Value::str("y")), None);
}

/// A panic while a shard lock is held poisons it; `lock_recover` must
/// clear that shard and keep the cache (and the SM using it) fully
/// functional — memoized verdicts still match scalar after recovery.
#[test]
fn poisoned_cache_recovers_and_stays_correct() {
    let pred = sieve(500);
    let cell = MemoCache::cell(2, 1 << 16);
    let mut sm = Sm::new(pred.clone());
    sm.set_memo(Some(cell.clone()));
    let batch: TupleBatch = (0..40)
        .map(|i: i64| Tuple::singleton_of(TableIdx(0), vec![Value::Int(i), Value::Int(i % 8)]))
        .collect();
    let want: Vec<Option<bool>> = batch.iter().map(|t| pred.eval(t)).collect();
    assert_eq!(sm.apply_batch_udf(&batch, true).verdicts, want);
    assert!(!cell.is_empty(), "warm-up should populate the cache");
    // Poison every shard: panic while holding each shard lock.
    for hash in 0..64u64 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.with_shard_of(hash, |_| panic!("poison shard"));
        }));
        assert!(result.is_err());
    }
    assert!(cell.any_poisoned(), "panic under the lock must poison");
    // Recovery: poisoned shards come back empty, verdicts stay correct.
    let out = sm.apply_batch_udf(&batch, true);
    assert_eq!(out.verdicts, want, "verdicts diverged after recovery");
    assert!(!cell.any_poisoned(), "lock_recover must clear the poison");
    // And the cache works again: a second pass hits.
    let again = sm.apply_batch_udf(&batch, true);
    assert_eq!(again.verdicts, want);
    assert!(again.memo.hits > 0, "recovered cache never hit");
}
