//! Property tests for the hash-once flat probe path: on every backend,
//! [`DictStore::lookup_eq_flat`] must agree with the scalar `lookup_eq`
//! verdict for verdict — through duplicate-heavy envelopes, `Int`/`Float`
//! coercion keys, NULL/EOT keys, and *adversarial hash collisions*
//! (distinct values sharing one `stable_key_hash`, constructed by
//! inverting the hash's multiply-rotate mixing).
//!
//! Cases are generated from the workspace's own seeded [`SimRng`] so the
//! suite is dependency-free and fully reproducible.

use std::sync::Arc;
use stems::core::stem::{ProbeReplySet, Stem, StemOptions};
use stems::core::TupleState;
use stems::sim::SimRng;
use stems::storage::{CandidateBuf, DictStore, StoreKind};
use stems::types::{HashedKey, Row, TableIdx, Tuple, Value};

fn kinds() -> [StoreKind; 5] {
    [
        StoreKind::List,
        StoreKind::Hash,
        StoreKind::Adaptive { threshold: 16 },
        StoreKind::Partitioned {
            partitions: 4,
            mem_resident: 1,
        },
        StoreKind::Sorted,
    ]
}

/// A mixed-type value pool exercising every normalization edge: ints,
/// integral and fractional floats, strings, bools, NULL and EOT.
fn random_value(rng: &mut SimRng) -> Value {
    match rng.below(8) {
        0 | 1 => Value::Int(rng.range_inclusive(0, 12)),
        2 => Value::Float(rng.range_inclusive(0, 12) as f64), // integral: coerces to Int
        3 => Value::Float(rng.range_inclusive(0, 12) as f64 + 0.5),
        4 => Value::str(["a", "b", "cc", "ddd"][rng.below(4) as usize]),
        5 => Value::Bool(rng.below(2) == 0),
        6 => Value::Null,
        _ => Value::Eot,
    }
}

fn assert_flat_eq_scalar(store: &dyn DictStore, col: usize, raw_keys: &[Value], ctx: &str) {
    let keys: Vec<HashedKey> = raw_keys.iter().cloned().map(HashedKey::new).collect();
    let mut buf = CandidateBuf::new();
    store.lookup_eq_flat(col, &keys, &mut buf);
    assert_eq!(buf.num_keys(), raw_keys.len(), "{ctx}");
    for (i, raw) in raw_keys.iter().enumerate() {
        let want = store.lookup_eq(col, raw);
        let got = buf.candidates(i);
        assert_eq!(got.len(), want.len(), "{ctx}: key {raw:?}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_ref(), w.as_ref(), "{ctx}: key {raw:?}");
        }
    }
}

/// Random mixed-type rows, duplicate-heavy mixed-type envelopes, all five
/// backends: flat ≡ scalar, key for key, row for row.
#[test]
fn flat_lookup_matches_scalar_on_random_envelopes() {
    for seed in 0..48u64 {
        let mut rng = SimRng::new(0xF1A7 ^ seed);
        let rows: Vec<Arc<Row>> = (0..rng.below(100))
            .map(|_| Row::shared(vec![random_value(&mut rng), random_value(&mut rng)]))
            .collect();
        // Envelope with heavy key duplication: half the keys repeat an
        // earlier one, exercising span sharing.
        let mut raw_keys: Vec<Value> = Vec::new();
        for _ in 0..rng.below(48) + 1 {
            if !raw_keys.is_empty() && rng.below(2) == 0 {
                let j = rng.below(raw_keys.len() as u64) as usize;
                raw_keys.push(raw_keys[j].clone());
            } else {
                raw_keys.push(random_value(&mut rng));
            }
        }
        for kind in kinds() {
            let mut store = kind.build(&[1]);
            store.insert_batch(rows.clone());
            let ctx = format!("seed {seed} kind {kind:?}");
            assert_flat_eq_scalar(store.as_ref(), 1, &raw_keys, &ctx);
            // The un-indexed column takes each backend's fallback path.
            assert_flat_eq_scalar(store.as_ref(), 0, &raw_keys, &ctx);
        }
    }
}

/// Invert the stable hash's mixing to manufacture a `Float` whose
/// `stable_key_hash` collides with a given `Int`'s while the two are not
/// SQL-equal. `mix(h, w) = (rot5(h) ^ w) * SEED` with odd SEED is
/// invertible mod 2^64.
fn colliding_float(i: i64) -> Option<Value> {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    // Newton iteration for the modular inverse of the odd SEED.
    let mut inv: u64 = SEED;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(SEED.wrapping_mul(inv)));
    }
    debug_assert_eq!(SEED.wrapping_mul(inv), 1);
    let mix = |h: u64, w: u64| (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    let target = Value::Int(i).stable_key_hash().expect("ints are hashable");
    // Solve mix(mix(0, 3), bits) == target for the float's payload bits.
    let bits = target.wrapping_mul(inv) ^ mix(0, 3).rotate_left(5);
    let f = f64::from_bits(bits);
    let v = Value::Float(f);
    // Floats that normalize to Int would hash down a different branch;
    // skip those (and the accidental true equality) — callers probe
    // several `i` values.
    (v.stable_key_hash() == Some(target) && !v.sql_eq(&Value::Int(i))).then_some(v)
}

/// Adversarial hash-collision rows: two keys with identical
/// `stable_key_hash` must still resolve to disjoint candidate sets (the
/// prehashed index chains and the envelope dedup both compare values,
/// never just hashes).
#[test]
fn hash_collisions_resolve_by_value_on_every_backend() {
    let mut pairs: Vec<(Value, Value)> = Vec::new();
    for i in 0..64i64 {
        if let Some(f) = colliding_float(i) {
            pairs.push((Value::Int(i), f));
        }
    }
    assert!(
        pairs.len() >= 32,
        "hash inversion should construct most collisions, got {}",
        pairs.len()
    );
    for (int_key, float_key) in pairs.iter().take(8) {
        assert_eq!(int_key.stable_key_hash(), float_key.stable_key_hash());
        for kind in kinds() {
            let mut store = kind.build(&[0]);
            // Two rows per key, plus an unrelated one.
            for v in [int_key, int_key, float_key, float_key, &Value::Int(-99)] {
                store.insert(Row::shared(vec![v.clone(), Value::Int(1)]));
            }
            assert_eq!(store.lookup_eq(0, int_key).len(), 2, "{kind:?}");
            assert_eq!(store.lookup_eq(0, float_key).len(), 2, "{kind:?}");
            // One envelope carrying both colliding keys (plus duplicates):
            // dedup must share only true duplicates, never the collision.
            assert_flat_eq_scalar(
                store.as_ref(),
                0,
                &[
                    int_key.clone(),
                    float_key.clone(),
                    int_key.clone(),
                    float_key.clone(),
                ],
                &format!("collision {int_key:?}/{float_key:?} on {kind:?}"),
            );
            let rows_int = store.lookup_eq(0, int_key);
            let rows_float = store.lookup_eq(0, float_key);
            for a in &rows_int {
                for b in &rows_float {
                    assert!(!Arc::ptr_eq(a, b), "collision leaked rows across keys");
                }
            }
        }
    }
}

/// The SteM's batched probe pipeline must agree with its scalar probe,
/// reply for reply — results, order, outcome, observed_ts, raw_matches —
/// on mixed envelopes of keyed, NULL-keyed, coercing and unbindable
/// probes. (The engine-level equivalence suites cover this end to end;
/// this pins the module API directly.)
#[test]
fn probe_batch_replies_equal_scalar_probe_replies() {
    use stems::catalog::{Catalog, QuerySpec, ScanSpec, SourceId, TableDef, TableInstance};
    use stems::types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Schema};

    let mut c = Catalog::new();
    let r = c
        .add_table(TableDef::new(
            "R",
            Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Float)]),
        ))
        .unwrap();
    let s = c
        .add_table(TableDef::new(
            "S",
            Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
        ))
        .unwrap();
    c.add_scan(r, ScanSpec::default()).unwrap();
    c.add_scan(s, ScanSpec::default()).unwrap();
    let query = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )],
        None,
    )
    .unwrap();
    let cartesian = QuerySpec::new(&c, query.tables.clone(), vec![], None).unwrap();

    for seed in 0..24u64 {
        let mut rng = SimRng::new(0x9B0B ^ seed);
        let mut stem = Stem::new(
            TableIdx(1),
            SourceId(1),
            &[0],
            true,
            false,
            StemOptions::default(),
        );
        for ts in 1..=rng.below(60) {
            let x = random_value(&mut rng);
            let x = if x.is_eot() { Value::Null } else { x };
            let t =
                Tuple::singleton_of(TableIdx(1), vec![x, Value::Int(rng.range_inclusive(0, 5))]);
            stem.build(&t, &TupleState::new(), ts);
        }
        for (q, label) in [(&query, "keyed"), (&cartesian, "scan")] {
            let probes: Vec<Tuple> = (0..rng.below(40) + 1)
                .map(|k| {
                    Tuple::singleton_of(
                        TableIdx(0),
                        vec![Value::Int(k as i64), random_value(&mut rng)],
                    )
                    .with_timestamp(TableIdx(0), 1_000 + k)
                })
                .collect();
            let states = vec![TupleState::new(); probes.len()];
            let mut batched = ProbeReplySet::new();
            stem.probe_batch_into(&probes, &states, q, &mut batched);
            assert_eq!(batched.len(), probes.len(), "seed {seed} {label}");
            for ((tuple, state), (meta, results)) in probes.iter().zip(&states).zip(batched.iter())
            {
                let want = stem.probe(tuple, state, q);
                assert_eq!(want.results, results, "seed {seed} {label}");
                assert_eq!(want.outcome, meta.outcome, "seed {seed} {label}");
                assert_eq!(want.observed_ts, meta.observed_ts, "seed {seed} {label}");
                assert_eq!(want.raw_matches, meta.raw_matches, "seed {seed} {label}");
            }
        }
    }
}
