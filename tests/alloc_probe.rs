//! Allocation accounting for the steady-state probe reply path.
//!
//! The probe pipeline promises **zero per-tuple heap allocations** once
//! its pooled buffers are warm: replies land in a caller-owned
//! [`ProbeReplySet`] arena, candidate fetch runs through the pooled
//! `ProbeScratch`, predicate sets resolve through the span-level cache,
//! and bounce decisions allocate nothing when no keyed EOTs are
//! registered. What remains is a small *per-envelope* constant (the span
//! table and eval cache are envelope-local).
//!
//! A counting global allocator turns that promise into an assertion: with
//! everything warmed up, probing an envelope of 4N stale tuples must cost
//! (almost) exactly the same number of allocations as an envelope of N —
//! any per-tuple allocation would scale the count ~4×. Probes are stale
//! (stamped at-or-before every build) so every candidate is fetched and
//! then timestamp-filtered: the fetch/reply plumbing is exercised, while
//! result formation — which inherently allocates the concatenated tuple —
//! stays out of the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use stems::catalog::{Catalog, QuerySpec, ScanSpec, SourceId, TableDef, TableInstance};
use stems::core::stem::{ProbeReplySet, StemOptions};
use stems::core::{ShardedStem, TupleState};
use stems::types::{
    CmpOp, ColRef, ColumnType, PredId, Predicate, Schema, TableIdx, Timestamp, Tuple, TupleBatch,
    Value,
};

fn setup() -> (Catalog, QuerySpec) {
    let mut c = Catalog::new();
    let r = c
        .add_table(TableDef::new(
            "R",
            Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
        ))
        .unwrap();
    let s = c
        .add_table(TableDef::new(
            "S",
            Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
        ))
        .unwrap();
    c.add_scan(r, ScanSpec::default()).unwrap();
    c.add_scan(s, ScanSpec::default()).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )],
        None,
    )
    .unwrap();
    (c, q)
}

/// Count allocations across `f`. Deallocations are free by design: the
/// reply path may *return* pooled memory, it just may never take more.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn steady_state_probe_reply_path_is_allocation_free_per_tuple() {
    const ROWS: usize = 4096;
    const SMALL: usize = ROWS / 4;
    let (_c, q) = setup();
    let mut stem = ShardedStem::new(
        TableIdx(1),
        SourceId(1),
        &[0],
        true,
        false,
        StemOptions::default(),
    );
    // Int-keyed builds, one distinct key per row, stamped 1..=ROWS.
    let mut ts: Timestamp = 0;
    let batch: TupleBatch = (0..ROWS as i64)
        .map(|i| Tuple::singleton_of(TableIdx(1), vec![Value::Int(i), Value::Int(i)]))
        .collect();
    let states = vec![TupleState::new(); batch.len()];
    stem.build_batch(&batch, &states, &mut ts);

    // Stale keyed probes: stamped 1, so every probe fetches its one
    // candidate and the TimeStamp rule filters it (ts(probe) > ts(match)
    // fails) — raw_matches > 0, zero results, zero concatenations.
    let mk_probes = |n: usize| -> Vec<Tuple> {
        (0..n as i64)
            .map(|i| {
                Tuple::singleton_of(
                    TableIdx(0),
                    vec![Value::Int(i), Value::Int(i % ROWS as i64)],
                )
                .with_timestamp(TableIdx(0), 1)
            })
            .collect()
    };
    let small = mk_probes(SMALL);
    let small_states = vec![TupleState::new(); SMALL];
    let big = mk_probes(ROWS);
    let big_states = vec![TupleState::new(); ROWS];
    let mut replies = ProbeReplySet::new();

    // Warm-up: size every pooled buffer (scratch, arena, span cache
    // capacity) for the largest envelope.
    replies.clear();
    stem.probe_batch_into(&big, &big_states, &q, &mut replies);
    assert_eq!(replies.len(), ROWS);
    assert_eq!(replies.total_results(), 0, "stale probes must form nothing");
    let fetched: usize = replies.iter().map(|(m, _)| m.raw_matches).sum();
    assert_eq!(fetched, ROWS, "every probe must fetch its candidate");

    let (small_allocs, ()) = allocs_during(|| {
        replies.clear();
        stem.probe_batch_into(&small, &small_states, &q, &mut replies);
    });
    assert_eq!(replies.len(), SMALL);
    let (big_allocs, ()) = allocs_during(|| {
        replies.clear();
        stem.probe_batch_into(&big, &big_states, &q, &mut replies);
    });
    assert_eq!(replies.len(), ROWS);

    // Per-envelope constants cancel; a single per-tuple allocation would
    // show up as ≈ 3 × SMALL extra counts on the big envelope.
    assert!(
        big_allocs <= small_allocs + 8,
        "probe reply path allocates per tuple: {SMALL} probes cost {small_allocs} allocations, \
         {ROWS} probes cost {big_allocs}"
    );
}
