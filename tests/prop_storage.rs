//! Property tests for the storage substrate: all dictionary backends must
//! be observationally equivalent (a SteM may swap its store without anyone
//! noticing — paper §3.1), and the dedup/sorted structures must match
//! naive models.
//!
//! Cases are generated from the workspace's own seeded [`SimRng`] so the
//! suite is dependency-free and fully reproducible: a failure report names
//! the seed that produced it.

use std::sync::Arc;
use stems::sim::SimRng;
use stems::storage::DictStore;
use stems::storage::{index_key, RowSet, SortedStore, StoreKind};
use stems::types::{CmpOp, Row, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64, i64),
    Lookup(i64),
}

fn ops(rng: &mut SimRng) -> Vec<Op> {
    let n = rng.below(60) as usize;
    (0..n)
        .map(|_| match rng.below(3) {
            0 => Op::Insert(rng.range_inclusive(0, 19), rng.range_inclusive(0, 5)),
            1 => Op::Remove(rng.range_inclusive(0, 19), rng.range_inclusive(0, 5)),
            _ => Op::Lookup(rng.range_inclusive(0, 7)),
        })
        .collect()
}

fn row(k: i64, v: i64) -> Arc<Row> {
    Row::shared(vec![Value::Int(k), Value::Int(v)])
}

/// Apply ops to a store and a naive Vec model; compare every observation.
fn check_store_against_model(kind: StoreKind, ops: &[Op], seed: u64) {
    let mut store = kind.build(&[1]);
    let mut model: Vec<Arc<Row>> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                store.insert(row(*k, *v));
                model.push(row(*k, *v));
            }
            Op::Remove(k, v) => {
                let store_removed = store.remove(&row(*k, *v));
                let model_removed = model
                    .iter()
                    .position(|r| r.as_ref() == row(*k, *v).as_ref())
                    .map(|i| {
                        model.remove(i);
                    })
                    .is_some();
                assert_eq!(store_removed, model_removed, "seed {seed}, op {op:?}");
            }
            Op::Lookup(key) => {
                let mut got: Vec<Vec<Value>> = store
                    .lookup_eq(1, &Value::Int(*key))
                    .iter()
                    .map(|r| r.values().to_vec())
                    .collect();
                let mut want: Vec<Vec<Value>> = model
                    .iter()
                    .filter(|r| r.get(1) == Some(&Value::Int(*key)))
                    .map(|r| r.values().to_vec())
                    .collect();
                got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                assert_eq!(got, want, "seed {seed}, op {op:?}");
            }
        }
        assert_eq!(store.len(), model.len(), "seed {seed}");
    }
    // Final scan must agree as a multiset.
    let mut got: Vec<Vec<Value>> = store.scan().iter().map(|r| r.values().to_vec()).collect();
    let mut want: Vec<Vec<Value>> = model.iter().map(|r| r.values().to_vec()).collect();
    got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    assert_eq!(got, want, "seed {seed}");
}

fn store_cases(kind_of: impl Fn() -> StoreKind) {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0xA11CE ^ seed);
        let ops = ops(&mut rng);
        check_store_against_model(kind_of(), &ops, seed);
    }
}

#[test]
fn list_store_matches_model() {
    store_cases(|| StoreKind::List);
}

#[test]
fn hash_store_matches_model() {
    store_cases(|| StoreKind::Hash);
}

#[test]
fn adaptive_store_matches_model() {
    store_cases(|| StoreKind::Adaptive { threshold: 5 });
}

#[test]
fn partitioned_store_matches_model() {
    store_cases(|| StoreKind::Partitioned {
        partitions: 4,
        mem_resident: 1,
    });
}

#[test]
fn sorted_store_matches_model() {
    store_cases(|| StoreKind::Sorted);
}

/// Batched insert/lookup must be observationally identical to the scalar
/// path on every backend (the batched eddy relies on this).
#[test]
fn batched_ops_match_scalar_ops() {
    for seed in 0..32u64 {
        let mut rng = SimRng::new(0xBA7C4 ^ seed);
        let n = rng.below(200) as usize + 1;
        let rows: Vec<Arc<Row>> = (0..n)
            .map(|_| row(rng.range_inclusive(0, 30), rng.range_inclusive(0, 8)))
            .collect();
        let keys: Vec<Value> = (0..rng.below(20) + 1)
            .map(|_| Value::Int(rng.range_inclusive(0, 10)))
            .collect();
        for kind in [
            StoreKind::List,
            StoreKind::Hash,
            StoreKind::Adaptive { threshold: 16 },
            StoreKind::Partitioned {
                partitions: 4,
                mem_resident: 1,
            },
            StoreKind::Sorted,
        ] {
            let mut scalar = kind.build(&[1]);
            for r in &rows {
                scalar.insert(r.clone());
            }
            let mut batched = kind.build(&[1]);
            batched.insert_batch(rows.clone());
            assert_eq!(scalar.len(), batched.len(), "seed {seed} kind {kind:?}");
            let got = batched.lookup_eq_batch(1, &keys);
            for (key, hits) in keys.iter().zip(&got) {
                let mut hit_vals: Vec<Vec<Value>> =
                    hits.iter().map(|r| r.values().to_vec()).collect();
                let mut want_vals: Vec<Vec<Value>> = scalar
                    .lookup_eq(1, key)
                    .iter()
                    .map(|r| r.values().to_vec())
                    .collect();
                hit_vals.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                want_vals.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                assert_eq!(hit_vals, want_vals, "seed {seed} kind {kind:?} key {key:?}");
            }
        }
    }
}

/// RowSet is exactly "have I seen this value before".
#[test]
fn rowset_matches_hashset_model() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0x5E7 ^ seed);
        let mut set = RowSet::new();
        let mut model: std::collections::HashSet<(i64, i64)> = Default::default();
        for _ in 0..rng.below(80) {
            let (k, v) = (rng.range_inclusive(0, 9), rng.range_inclusive(0, 3));
            let fresh = set.insert(row(k, v));
            assert_eq!(fresh, model.insert((k, v)), "seed {seed}");
        }
        assert_eq!(set.len(), model.len(), "seed {seed}");
    }
}

/// SortedStore range lookups equal a naive filter.
#[test]
fn sorted_store_ranges_match_filter() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0x50_27ED ^ seed);
        let vals: Vec<i64> = (0..rng.below(50))
            .map(|_| rng.range_inclusive(-20, 19))
            .collect();
        let key = rng.range_inclusive(-25, 24);
        let mut store = SortedStore::new(0);
        for (i, v) in vals.iter().enumerate() {
            store.insert(Row::shared(vec![Value::Int(*v), Value::Int(i as i64)]));
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Ne,
        ] {
            let got = store.lookup_range(op, &Value::Int(key)).len();
            let want = vals
                .iter()
                .filter(|v| op.eval(&Value::Int(**v), &Value::Int(key)))
                .count();
            assert_eq!(got, want, "seed {seed} op {op:?}");
        }
    }
}

/// index_key normalization: sql-equal values get identical keys.
#[test]
fn index_key_respects_sql_equality() {
    for a in -1000..1000i64 {
        let int_key = index_key(&Value::Int(a));
        let float_key = index_key(&Value::Float(a as f64));
        assert_eq!(int_key, float_key);
    }
    assert_eq!(index_key(&Value::Null), None);
    assert_eq!(index_key(&Value::Eot), None);
}
