//! Property tests for the storage substrate: all dictionary backends must
//! be observationally equivalent (a SteM may swap its store without anyone
//! noticing — paper §3.1), and the dedup/sorted structures must match
//! naive models.

use proptest::prelude::*;
use std::sync::Arc;
use stems::storage::{index_key, RowSet, SortedStore, StoreKind};
use stems::storage::DictStore;
use stems::types::{CmpOp, Row, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64, i64),
    Lookup(i64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..20i64, 0..6i64).prop_map(|(k, v)| Op::Insert(k, v)),
            (0..20i64, 0..6i64).prop_map(|(k, v)| Op::Remove(k, v)),
            (0..8i64).prop_map(Op::Lookup),
        ],
        0..60,
    )
}

fn row(k: i64, v: i64) -> Arc<Row> {
    Row::shared(vec![Value::Int(k), Value::Int(v)])
}

/// Apply ops to a store and a naive Vec model; compare every observation.
fn check_store_against_model(kind: StoreKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut store = kind.build(&[1]);
    let mut model: Vec<Arc<Row>> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                store.insert(row(*k, *v));
                model.push(row(*k, *v));
            }
            Op::Remove(k, v) => {
                let store_removed = store.remove(&row(*k, *v));
                let model_removed = model
                    .iter()
                    .position(|r| r.as_ref() == row(*k, *v).as_ref())
                    .map(|i| {
                        model.remove(i);
                    })
                    .is_some();
                prop_assert_eq!(store_removed, model_removed);
            }
            Op::Lookup(key) => {
                let mut got: Vec<Vec<Value>> = store
                    .lookup_eq(1, &Value::Int(*key))
                    .iter()
                    .map(|r| r.values().to_vec())
                    .collect();
                let mut want: Vec<Vec<Value>> = model
                    .iter()
                    .filter(|r| r.get(1) == Some(&Value::Int(*key)))
                    .map(|r| r.values().to_vec())
                    .collect();
                got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                prop_assert_eq!(got, want);
            }
        }
        prop_assert_eq!(store.len(), model.len());
    }
    // Final scan must agree as a multiset.
    let mut got: Vec<Vec<Value>> = store.scan().iter().map(|r| r.values().to_vec()).collect();
    let mut want: Vec<Vec<Value>> = model.iter().map(|r| r.values().to_vec()).collect();
    got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    prop_assert_eq!(got, want);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn list_store_matches_model(ops in ops()) {
        check_store_against_model(StoreKind::List, &ops)?;
    }

    #[test]
    fn hash_store_matches_model(ops in ops()) {
        check_store_against_model(StoreKind::Hash, &ops)?;
    }

    #[test]
    fn adaptive_store_matches_model(ops in ops()) {
        check_store_against_model(StoreKind::Adaptive { threshold: 5 }, &ops)?;
    }

    /// RowSet is exactly "have I seen this value before".
    #[test]
    fn rowset_matches_hashset_model(pairs in prop::collection::vec((0..10i64, 0..4i64), 0..80)) {
        let mut set = RowSet::new();
        let mut model: std::collections::HashSet<(i64, i64)> = Default::default();
        for (k, v) in pairs {
            let fresh = set.insert(row(k, v));
            prop_assert_eq!(fresh, model.insert((k, v)));
        }
        prop_assert_eq!(set.len(), model.len());
    }

    /// SortedStore range lookups equal a naive filter.
    #[test]
    fn sorted_store_ranges_match_filter(
        vals in prop::collection::vec(-20..20i64, 0..50),
        key in -25..25i64,
    ) {
        let mut store = SortedStore::new(0);
        for (i, v) in vals.iter().enumerate() {
            store.insert(Row::shared(vec![Value::Int(*v), Value::Int(i as i64)]));
        }
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Ne] {
            let got = store.lookup_range(op, &Value::Int(key)).len();
            let want = vals.iter().filter(|v| op.eval(&Value::Int(**v), &Value::Int(key))).count();
            prop_assert_eq!(got, want, "op {:?}", op);
        }
    }

    /// index_key normalization: sql-equal values get identical keys.
    #[test]
    fn index_key_respects_sql_equality(a in -1000..1000i64) {
        let int_key = index_key(&Value::Int(a));
        let float_key = index_key(&Value::Float(a as f64));
        prop_assert_eq!(int_key, float_key);
        prop_assert_eq!(index_key(&Value::Null), None);
        prop_assert_eq!(index_key(&Value::Eot), None);
    }
}
